//! `--json` output: the schema is stable (snapshot-tested byte for byte)
//! and genuinely JSON — it round-trips through the workspace serde shims,
//! which the linter itself never links.

use pfair_lint::{apply_baseline, diagnostics_to_json, lint_files, parse_baseline, BaselineEntry};
use serde::Value;

fn fixture_diags() -> Vec<pfair_lint::Diagnostic> {
    let src = "fn simulate_fix(sys: &Sys) {\n    pick(sys);\n}\nfn pick(sys: &Sys) {\n    sys.heap.peek().unwrap();\n}\n";
    lint_files(&[("crates/sim/src/x.rs".to_string(), src.to_string())])
}

#[test]
fn json_output_matches_its_snapshot() {
    let json = diagnostics_to_json(&fixture_diags());
    let expected = "[\n  {\"file\": \"crates/sim/src/x.rs\", \"line\": 5, \"rule\": \"panic-policy-v2\", \"message\": \"bare `.unwrap()` on a hot path (reachable via simulate_fix \\u2192 pick): use `.expect(\\\"<what invariant held and broke>\\\")`\", \"suppression\": \"// pfair-lint: allow(panic-policy-v2): <why this site is sound>\"}\n]\n";
    // The arrow is multi-byte UTF-8; both the literal char and an escape
    // are valid JSON, and this emitter keeps the char.
    let expected = expected.replace("\\u2192", "→");
    assert_eq!(json, expected);
}

#[test]
fn json_output_round_trips_through_serde() {
    let diags = fixture_diags();
    let json = diagnostics_to_json(&diags);
    let v: Value = serde_json::from_str(&json).expect("lint --json output parses as JSON");
    let Value::Seq(items) = &v else {
        panic!("top level is an array, got {v:?}");
    };
    assert_eq!(items.len(), diags.len());
    for (item, d) in items.iter().zip(&diags) {
        assert_eq!(
            item.field("file").expect("file field"),
            &Value::Str(d.path.clone())
        );
        assert_eq!(
            item.field("line").expect("line field"),
            &Value::Int(i128::try_from(d.line).expect("line fits"))
        );
        assert_eq!(
            item.field("rule").expect("rule field"),
            &Value::Str(d.rule.to_string())
        );
        assert_eq!(
            item.field("message").expect("message field"),
            &Value::Str(d.message.clone())
        );
        let Value::Str(sup) = item.field("suppression").expect("suppression field") else {
            panic!("suppression is a string");
        };
        assert!(sup.contains(&format!("allow({})", d.rule)), "{sup}");
    }
    // Serialize → parse again: a true round trip, not just a parse.
    let again: Value = serde_json::from_str(&serde_json::to_string(&v).expect("Value serializes"))
        .expect("re-parses");
    assert_eq!(v, again);
}

#[test]
fn empty_finding_set_is_an_empty_array() {
    let json = diagnostics_to_json(&[]);
    assert_eq!(json, "[]\n");
    let v: Value = serde_json::from_str(&json).expect("parses");
    assert_eq!(v, Value::Seq(Vec::new()));
}

#[test]
fn baseline_parses_filters_and_ratchets() {
    let diags = fixture_diags();
    assert_eq!(diags.len(), 1);
    let text = format!(
        "# comment line\n\n{}\t{}\t{}\nno-float-time\tcrates/sim/src/gone.rs\ta fixed finding\n",
        diags[0].rule, diags[0].path, diags[0].message
    );
    let baseline = parse_baseline(&text).expect("well-formed baseline");
    assert_eq!(baseline.len(), 2);
    let split = apply_baseline(&diags, &baseline);
    assert!(split.new.is_empty(), "the finding is baselined");
    assert_eq!(split.baselined.len(), 1);
    // The ratchet: the entry whose finding was fixed is stale and must go.
    assert_eq!(
        split.stale,
        vec![BaselineEntry {
            rule: "no-float-time".to_string(),
            path: "crates/sim/src/gone.rs".to_string(),
            message: "a fixed finding".to_string(),
        }]
    );
    // Malformed lines are errors, not silently ignored entries.
    assert!(parse_baseline("just-one-field\n").is_err());
}
