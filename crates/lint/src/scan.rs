//! Lexical source model.
//!
//! The rules operate on a *masked* view of each file produced by the
//! token layer ([`crate::tokens`]): comment and string interiors are
//! blanked (length- and line-preserving, quote delimiters kept), so
//! `"f64"` inside a string or `.unwrap()` inside a doc comment never
//! match. A second pass tracks brace-block contexts — `#[cfg(test)]`
//! regions, `if …ENABLED…` gates, `fn on_event` bodies, `impl`/`fn`
//! interiors — recorded per line, and suppression comments are parsed
//! from the raw text, split into honored (plain `//`) and misplaced
//! (doc-comment) occurrences.

use crate::tokens::{lex, CharClass, Tok};

/// One `allow(<rule>)` suppression parsed from a `pfair-lint` comment.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The rule name inside `allow(…)`.
    pub rule: String,
    /// Whether a non-empty justification follows (`: <why>`).
    pub justified: bool,
}

/// Block context at the *start* of a line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LineCtx {
    /// Inside a `#[cfg(test)]`-gated block.
    pub in_test: bool,
    /// Inside a block whose header is an `if` on a `…ENABLED` condition.
    pub enabled_gated: bool,
    /// Inside the body of a function named `on_event` (observer
    /// forwarding impls).
    pub in_on_event_fn: bool,
    /// Inside an `impl` block or a function body (used by dead-pub to
    /// collect only top-level items).
    pub in_impl_or_fn: bool,
}

/// A scanned source file: raw and masked lines, per-line contexts,
/// suppressions, and the token stream the item graph parses.
#[derive(Clone, Debug)]
pub struct ScannedFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Raw lines (for suppression comments and diagnostics).
    pub raw: Vec<String>,
    /// Masked lines: comment/string interiors blanked.
    pub masked: Vec<String>,
    /// Honored suppressions (plain `//` comments) parsed per line.
    pub allows: Vec<Vec<Allow>>,
    /// Inert suppressions found inside doc comments, per line — flagged
    /// by the `misplaced-suppression` rule.
    pub misplaced_allows: Vec<Vec<Allow>>,
    /// Context at the start of each line.
    pub ctx: Vec<LineCtx>,
    /// The comment-free token stream, with 1-based lines.
    pub tokens: Vec<Tok>,
}

/// Scans `source` into the model the rules consume.
#[must_use]
pub fn scan(path: &str, source: &str) -> ScannedFile {
    let lexed = lex(source);
    let raw: Vec<String> = source.lines().map(str::to_string).collect();
    let masked: Vec<String> = lexed.masked.lines().map(str::to_string).collect();
    // Per-line class slices, aligned with each line's chars.
    let mut class_lines: Vec<Vec<CharClass>> = Vec::new();
    let mut cur = Vec::new();
    for (c, cl) in lexed.masked.chars().zip(lexed.classes.iter().copied()) {
        if c == '\n' {
            class_lines.push(std::mem::take(&mut cur));
        } else {
            cur.push(cl);
        }
    }
    if !cur.is_empty() {
        class_lines.push(cur);
    }
    class_lines.resize(raw.len(), Vec::new());
    let mut allows: Vec<Vec<Allow>> = Vec::with_capacity(raw.len());
    let mut misplaced_allows: Vec<Vec<Allow>> = Vec::with_capacity(raw.len());
    for (l, cls) in raw.iter().zip(class_lines.iter()) {
        let (honored, misplaced) = parse_allows(l, cls);
        allows.push(honored);
        misplaced_allows.push(misplaced);
    }
    let mut ctx = contexts(&lexed.masked);
    ctx.resize(raw.len().max(masked.len()).max(1), LineCtx::default());
    ScannedFile {
        path: path.replace('\\', "/"),
        raw,
        masked,
        allows,
        misplaced_allows,
        ctx,
        tokens: lexed.tokens,
    }
}

/// Tracks brace-block contexts over the masked text. The "header" of a
/// block is the statement text accumulated since the last `;`/`{`/`}`
/// boundary, so multi-line `if` conditions and attribute-decorated item
/// headers are seen whole.
fn contexts(masked: &str) -> Vec<LineCtx> {
    #[derive(Clone, Copy, Default)]
    struct Frame {
        test: bool,
        gate: bool,
        on_event: bool,
        impl_or_fn: bool,
    }
    let snapshot = |stack: &[Frame]| LineCtx {
        in_test: stack.iter().any(|f| f.test),
        enabled_gated: stack.iter().any(|f| f.gate),
        in_on_event_fn: stack.iter().any(|f| f.on_event),
        in_impl_or_fn: stack.iter().any(|f| f.impl_or_fn),
    };
    let mut stack: Vec<Frame> = Vec::new();
    let mut buf = String::new();
    let mut ctxs = vec![snapshot(&stack)];
    for c in masked.chars() {
        match c {
            '\n' => {
                ctxs.push(snapshot(&stack));
                buf.push(' ');
            }
            '{' => {
                let words: Vec<&str> = buf
                    .split(|ch: char| !(char::is_alphanumeric(ch) || ch == '_'))
                    .filter(|w| !w.is_empty())
                    .collect();
                let has = |w: &str| words.contains(&w);
                stack.push(Frame {
                    test: buf.contains("#[cfg(test)]") || buf.contains("# [cfg (test)]"),
                    gate: has("if") && buf.contains("ENABLED"),
                    on_event: buf.contains("fn on_event"),
                    impl_or_fn: has("impl") || has("fn"),
                });
                buf.clear();
            }
            '}' => {
                stack.pop();
                buf.clear();
            }
            ';' => buf.clear(),
            _ => buf.push(c),
        }
    }
    ctxs
}

/// Parses every `allow(<rule>)[: justification]` suppression on a raw
/// line, split by placement: occurrences in plain `//` comment text are
/// honored policy; occurrences in doc comments are inert and come back
/// in the second list (the `misplaced-suppression` rule flags them).
/// An `allow(…)` inside a string literal or a fenced doc example is
/// prose and ignored entirely.
fn parse_allows(line: &str, classes: &[CharClass]) -> (Vec<Allow>, Vec<Allow>) {
    const KEY: &str = "pfair-lint: allow(";
    let mut honored = Vec::new();
    let mut misplaced = Vec::new();
    let mut base = 0usize;
    while let Some(rel) = line[base..].find(KEY) {
        let pos = base + rel;
        let char_idx = line[..pos].chars().count();
        let class = classes.get(char_idx).copied().unwrap_or(CharClass::Other);
        let after = &line[pos + KEY.len()..];
        let Some(close) = after.find(')') else { break };
        let tail = &after[close + 1..];
        if matches!(class, CharClass::Comment | CharClass::Doc) {
            let rule = after[..close].trim().to_string();
            let justified = tail
                .trim_start()
                .strip_prefix(':')
                .is_some_and(|j| !j.trim().is_empty());
            let allow = Allow { rule, justified };
            if class == CharClass::Comment {
                honored.push(allow);
            } else {
                misplaced.push(allow);
            }
        }
        base = pos + KEY.len() + close + 1;
    }
    (honored, misplaced)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_string_interiors() {
        let f = scan(
            "crates/sim/src/x.rs",
            "let a = \"f64 inside\"; // f64 comment\nlet b = 1; /* f64\nf64 */ let c = 2;\n",
        );
        assert!(!f.masked[0].contains("f64"));
        assert!(f.masked[0].contains("\"          \""), "{:?}", f.masked[0]);
        assert!(!f.masked[1].contains("f64"));
        assert!(!f.masked[2].contains("f64"));
        assert!(f.masked[2].contains("let c = 2;"));
    }

    #[test]
    fn masking_keeps_empty_string_literals_recognizable() {
        let f = scan("x.rs", "a.expect(\"\"); b.expect(\"msg\");");
        assert!(f.masked[0].contains("expect(\"\")"));
        assert!(!f.masked[0].contains("msg"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = scan(
            "x.rs",
            "fn f<'a>(c: char) -> bool { c == '{' || c == '\\n' }",
        );
        // The brace inside the char literal must not open a block.
        assert_eq!(f.ctx.len(), 1);
        assert!(f.masked[0].contains("'a"));
        assert!(!f.masked[0].contains("'{'"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scan("x.rs", "let s = r#\"f64 { } \"#; let t = 1;");
        assert!(!f.masked[0].contains("f64"));
        assert!(f.masked[0].contains("let t = 1;"));
        assert_eq!(f.ctx.len(), 1);
    }

    #[test]
    fn raw_strings_with_hashes_do_not_desync_statement_tracking() {
        // A `"#`-bearing raw string spanning lines must leave the block
        // stack exactly where it was: `fn after` is NOT inside a block.
        let src = "fn first() {\n    let s = r##\"text \"# with { fake } closers\n  and a second line\"##;\n}\nfn after() {}\n";
        let f = scan("x.rs", src);
        assert!(
            !f.ctx[4].in_impl_or_fn,
            "line `fn after` must be back at top level: {:?}",
            f.ctx
        );
    }

    #[test]
    fn nested_block_comments_do_not_desync() {
        let src = "fn a() {\n    /* outer { /* inner } */ still commented { */\n}\nfn b() {}\n";
        let f = scan("x.rs", src);
        assert!(!f.ctx[3].in_impl_or_fn, "fn b is at top level");
    }

    #[test]
    fn cfg_test_regions_are_tracked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = scan("x.rs", src);
        assert!(!f.ctx[0].in_test);
        assert!(f.ctx[3].in_test, "inside the test mod");
        assert!(!f.ctx[5].in_test, "after the test mod closes");
    }

    #[test]
    fn enabled_gates_and_on_event_fns_are_tracked() {
        let src = "fn drive<O: Observer>() {\n    if O::ENABLED {\n        obs.on_event(&e);\n    }\n    obs.on_event(&e);\n}\nfn on_event(&mut self) {\n    self.inner.on_event(&e);\n}\n";
        let f = scan("crates/sim/src/x.rs", src);
        assert!(f.ctx[2].enabled_gated, "line inside the gate");
        assert!(!f.ctx[4].enabled_gated, "line after the gate closes");
        assert!(f.ctx[7].in_on_event_fn, "inside fn on_event");
    }

    #[test]
    fn allow_parsing() {
        let f = scan(
            "x.rs",
            "x // pfair-lint: allow(no-float-time): report-only exit\n// pfair-lint: allow(panic-policy-v2)\nno suppression here\n",
        );
        assert_eq!(f.allows[0].len(), 1);
        assert_eq!(f.allows[0][0].rule, "no-float-time");
        assert!(f.allows[0][0].justified);
        assert!(!f.allows[1][0].justified);
        assert!(f.allows[2].is_empty());
    }

    #[test]
    fn allows_in_strings_are_prose_and_in_docs_are_misplaced() {
        let src = "/// doc example: pfair-lint: allow(no-float-time): quoted.\nfn a() {}\nlet s = \"pfair-lint: allow(panic-policy-v2): quoted\";\n//! pfair-lint: allow(dead-pub): also misplaced.\n";
        let f = scan("x.rs", src);
        assert!(f.allows.iter().all(Vec::is_empty), "{:?}", f.allows);
        assert_eq!(f.misplaced_allows[0].len(), 1);
        assert_eq!(f.misplaced_allows[0][0].rule, "no-float-time");
        assert!(f.misplaced_allows[2].is_empty(), "string content is prose");
        assert_eq!(f.misplaced_allows[3].len(), 1);
        assert_eq!(f.misplaced_allows[3][0].rule, "dead-pub");
    }

    #[test]
    fn allows_inside_doc_fences_are_prose() {
        let src = "/// ```text\n/// // pfair-lint: allow(no-float-time): the sanctioned exit.\n/// ```\nfn a() {}\n";
        let f = scan("x.rs", src);
        assert!(f.allows.iter().all(Vec::is_empty));
        assert!(
            f.misplaced_allows.iter().all(Vec::is_empty),
            "fenced examples document the syntax, they are not misplaced policy: {:?}",
            f.misplaced_allows
        );
    }
}
