//! Lexical source model.
//!
//! The rules operate on a *masked* view of each file: comment and string
//! interiors are blanked (length- and line-preserving, quote delimiters
//! kept), so `"f64"` inside a string or `.unwrap()` inside a doc comment
//! never match. A second pass tracks brace-block contexts — `#[cfg(test)]`
//! regions, `if …ENABLED…` gates, `fn on_event` bodies, `impl`/`fn`
//! interiors — recorded per line, and suppression comments are parsed from
//! the raw text.

/// What a masked character position originally was. Suppressions are only
/// honored inside plain `//` comments — an `allow(…)` quoted in a doc
/// comment or a string literal is prose, not policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CharClass {
    /// Live code.
    #[default]
    Code,
    /// A plain `//` line comment (not `///`/`//!` docs).
    Comment,
    /// Doc comments, block comments, string and char literals.
    Other,
}

/// One `pfair-lint: allow(<rule>)` suppression parsed from a comment.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The rule name inside `allow(…)`.
    pub rule: String,
    /// Whether a non-empty justification follows (`: <why>`).
    pub justified: bool,
}

/// Block context at the *start* of a line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LineCtx {
    /// Inside a `#[cfg(test)]`-gated block.
    pub in_test: bool,
    /// Inside a block whose header is an `if` on a `…ENABLED` condition.
    pub enabled_gated: bool,
    /// Inside the body of a function named `on_event` (observer
    /// forwarding impls).
    pub in_on_event_fn: bool,
    /// Inside an `impl` block or a function body (used by shim-drift to
    /// collect only top-level items).
    pub in_impl_or_fn: bool,
}

/// A scanned source file: raw and masked lines plus per-line contexts.
#[derive(Clone, Debug)]
pub struct ScannedFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Raw lines (for suppression comments and diagnostics).
    pub raw: Vec<String>,
    /// Masked lines: comment/string interiors blanked.
    pub masked: Vec<String>,
    /// Suppressions parsed per line.
    pub allows: Vec<Vec<Allow>>,
    /// Context at the start of each line.
    pub ctx: Vec<LineCtx>,
}

/// Scans `source` into the model the rules consume.
#[must_use]
pub fn scan(path: &str, source: &str) -> ScannedFile {
    let (masked_text, classes) = mask(source);
    let raw: Vec<String> = source.lines().map(str::to_string).collect();
    let masked: Vec<String> = masked_text.lines().map(str::to_string).collect();
    // Per-line class slices, aligned with each line's chars.
    let mut class_lines: Vec<Vec<CharClass>> = Vec::new();
    let mut cur = Vec::new();
    for (c, cl) in masked_text.chars().zip(classes.iter().copied()) {
        if c == '\n' {
            class_lines.push(std::mem::take(&mut cur));
        } else {
            cur.push(cl);
        }
    }
    if !cur.is_empty() {
        class_lines.push(cur);
    }
    class_lines.resize(raw.len(), Vec::new());
    let allows: Vec<Vec<Allow>> = raw
        .iter()
        .zip(class_lines.iter())
        .map(|(l, cls)| parse_allows(l, cls))
        .collect();
    let mut ctx = contexts(&masked_text);
    ctx.resize(raw.len().max(masked.len()).max(1), LineCtx::default());
    ScannedFile {
        path: path.replace('\\', "/"),
        raw,
        masked,
        allows,
        ctx,
    }
}

/// Blanks comment and string interiors, preserving length, line structure
/// and quote delimiters (so an empty string literal stays recognizably
/// `""`), and classifies every output char as code, plain comment, or
/// other masked text.
fn mask(source: &str) -> (String, Vec<CharClass>) {
    let b: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut cls: Vec<CharClass> = Vec::with_capacity(source.len());
    let keep_nl = |c: char| if c == '\n' { '\n' } else { ' ' };
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == '/' && b.get(i + 1) == Some(&'/') {
            let doc = matches!(b.get(i + 2), Some('/') | Some('!'));
            let class = if doc {
                CharClass::Other
            } else {
                CharClass::Comment
            };
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                cls.push(class);
                i += 1;
            }
            continue;
        }
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1;
            out.push_str("  ");
            cls.push(CharClass::Other);
            cls.push(CharClass::Other);
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    cls.push(CharClass::Other);
                    cls.push(CharClass::Other);
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    cls.push(CharClass::Other);
                    cls.push(CharClass::Other);
                    i += 2;
                } else {
                    out.push(keep_nl(b[i]));
                    cls.push(CharClass::Other);
                    i += 1;
                }
            }
            continue;
        }
        if c == 'r' && matches!(b.get(i + 1), Some('"') | Some('#')) {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while b.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&'"') {
                out.push(' ');
                out.push_str(&" ".repeat(hashes));
                out.push('"');
                for _ in 0..hashes + 2 {
                    cls.push(CharClass::Other);
                }
                j += 1;
                while j < b.len() {
                    if b[j] == '"' {
                        let mut k = j + 1;
                        let mut h = 0;
                        while h < hashes && b.get(k) == Some(&'#') {
                            h += 1;
                            k += 1;
                        }
                        if h == hashes {
                            out.push('"');
                            out.push_str(&" ".repeat(hashes));
                            for _ in 0..hashes + 1 {
                                cls.push(CharClass::Other);
                            }
                            j = k;
                            break;
                        }
                    }
                    out.push(keep_nl(b[j]));
                    cls.push(CharClass::Other);
                    j += 1;
                }
                i = j;
                continue;
            }
        }
        if c == '"' {
            out.push('"');
            cls.push(CharClass::Other);
            i += 1;
            while i < b.len() {
                if b[i] == '\\' {
                    out.push(' ');
                    cls.push(CharClass::Other);
                    if let Some(&e) = b.get(i + 1) {
                        out.push(keep_nl(e));
                        cls.push(CharClass::Other);
                    }
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push('"');
                    cls.push(CharClass::Other);
                    i += 1;
                    break;
                }
                out.push(keep_nl(b[i]));
                cls.push(CharClass::Other);
                i += 1;
            }
            continue;
        }
        if c == '\'' {
            if b.get(i + 1) == Some(&'\\') {
                out.push('\'');
                out.push(' ');
                cls.push(CharClass::Other);
                cls.push(CharClass::Other);
                i += 2;
                while i < b.len() && b[i] != '\'' {
                    out.push(' ');
                    cls.push(CharClass::Other);
                    i += 1;
                }
                if i < b.len() {
                    out.push('\'');
                    cls.push(CharClass::Other);
                    i += 1;
                }
                continue;
            }
            if b.get(i + 2) == Some(&'\'') {
                out.push_str("' '");
                cls.push(CharClass::Other);
                cls.push(CharClass::Other);
                cls.push(CharClass::Other);
                i += 3;
                continue;
            }
            // A lifetime: pass through as code.
            out.push('\'');
            cls.push(CharClass::Code);
            i += 1;
            continue;
        }
        out.push(c);
        cls.push(CharClass::Code);
        i += 1;
    }
    (out, cls)
}

/// Tracks brace-block contexts over the masked text. The "header" of a
/// block is the statement text accumulated since the last `;`/`{`/`}`
/// boundary, so multi-line `if` conditions and attribute-decorated item
/// headers are seen whole.
fn contexts(masked: &str) -> Vec<LineCtx> {
    #[derive(Clone, Copy, Default)]
    struct Frame {
        test: bool,
        gate: bool,
        on_event: bool,
        impl_or_fn: bool,
    }
    let snapshot = |stack: &[Frame]| LineCtx {
        in_test: stack.iter().any(|f| f.test),
        enabled_gated: stack.iter().any(|f| f.gate),
        in_on_event_fn: stack.iter().any(|f| f.on_event),
        in_impl_or_fn: stack.iter().any(|f| f.impl_or_fn),
    };
    let mut stack: Vec<Frame> = Vec::new();
    let mut buf = String::new();
    let mut ctxs = vec![snapshot(&stack)];
    for c in masked.chars() {
        match c {
            '\n' => {
                ctxs.push(snapshot(&stack));
                buf.push(' ');
            }
            '{' => {
                let words: Vec<&str> = buf
                    .split(|ch: char| !(char::is_alphanumeric(ch) || ch == '_'))
                    .filter(|w| !w.is_empty())
                    .collect();
                let has = |w: &str| words.contains(&w);
                stack.push(Frame {
                    test: buf.contains("#[cfg(test)]") || buf.contains("# [cfg (test)]"),
                    gate: has("if") && buf.contains("ENABLED"),
                    on_event: buf.contains("fn on_event"),
                    impl_or_fn: has("impl") || has("fn"),
                });
                buf.clear();
            }
            '}' => {
                stack.pop();
                buf.clear();
            }
            ';' => buf.clear(),
            _ => buf.push(c),
        }
    }
    ctxs
}

/// Parses every `pfair-lint: allow(<rule>)[: justification]` on a raw
/// line. Only occurrences classified as plain `//` comment text count:
/// an `allow(…)` quoted in a doc comment or string literal is prose.
fn parse_allows(line: &str, classes: &[CharClass]) -> Vec<Allow> {
    const KEY: &str = "pfair-lint: allow(";
    let mut out = Vec::new();
    let mut base = 0usize;
    while let Some(rel) = line[base..].find(KEY) {
        let pos = base + rel;
        let char_idx = line[..pos].chars().count();
        let in_comment = classes.get(char_idx) == Some(&CharClass::Comment);
        let after = &line[pos + KEY.len()..];
        let Some(close) = after.find(')') else { break };
        let tail = &after[close + 1..];
        if in_comment {
            let rule = after[..close].trim().to_string();
            let justified = tail
                .trim_start()
                .strip_prefix(':')
                .is_some_and(|j| !j.trim().is_empty());
            out.push(Allow { rule, justified });
        }
        base = pos + KEY.len() + close + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_string_interiors() {
        let f = scan(
            "crates/sim/src/x.rs",
            "let a = \"f64 inside\"; // f64 comment\nlet b = 1; /* f64\nf64 */ let c = 2;\n",
        );
        assert!(!f.masked[0].contains("f64"));
        assert!(f.masked[0].contains("\"          \""), "{:?}", f.masked[0]);
        assert!(!f.masked[1].contains("f64"));
        assert!(!f.masked[2].contains("f64"));
        assert!(f.masked[2].contains("let c = 2;"));
    }

    #[test]
    fn masking_keeps_empty_string_literals_recognizable() {
        let f = scan("x.rs", "a.expect(\"\"); b.expect(\"msg\");");
        assert!(f.masked[0].contains("expect(\"\")"));
        assert!(!f.masked[0].contains("msg"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = scan(
            "x.rs",
            "fn f<'a>(c: char) -> bool { c == '{' || c == '\\n' }",
        );
        // The brace inside the char literal must not open a block.
        assert_eq!(f.ctx.len(), 1);
        assert!(f.masked[0].contains("'a"));
        assert!(!f.masked[0].contains("'{'"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scan("x.rs", "let s = r#\"f64 { } \"#; let t = 1;");
        assert!(!f.masked[0].contains("f64"));
        assert!(f.masked[0].contains("let t = 1;"));
        assert_eq!(f.ctx.len(), 1);
    }

    #[test]
    fn cfg_test_regions_are_tracked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = scan("x.rs", src);
        assert!(!f.ctx[0].in_test);
        assert!(f.ctx[3].in_test, "inside the test mod");
        assert!(!f.ctx[5].in_test, "after the test mod closes");
    }

    #[test]
    fn enabled_gates_and_on_event_fns_are_tracked() {
        let src = "fn drive<O: Observer>() {\n    if O::ENABLED {\n        obs.on_event(&e);\n    }\n    obs.on_event(&e);\n}\nfn on_event(&mut self) {\n    self.inner.on_event(&e);\n}\n";
        let f = scan("crates/sim/src/x.rs", src);
        assert!(f.ctx[2].enabled_gated, "line inside the gate");
        assert!(!f.ctx[4].enabled_gated, "line after the gate closes");
        assert!(f.ctx[7].in_on_event_fn, "inside fn on_event");
    }

    #[test]
    fn allow_parsing() {
        let f = scan(
            "x.rs",
            "x // pfair-lint: allow(no-float-time): report-only exit\n// pfair-lint: allow(panic-policy)\nno suppression here\n",
        );
        assert_eq!(f.allows[0].len(), 1);
        assert_eq!(f.allows[0][0].rule, "no-float-time");
        assert!(f.allows[0][0].justified);
        assert!(!f.allows[1][0].justified);
        assert!(f.allows[2].is_empty());
    }

    #[test]
    fn allows_in_docs_and_strings_are_prose() {
        let src = "/// doc example: pfair-lint: allow(no-float-time): quoted.\nfn a() {}\nlet s = \"pfair-lint: allow(panic-policy): quoted\";\n//! pfair-lint: allow(shim-drift): also quoted.\n";
        let f = scan("x.rs", src);
        assert!(f.allows.iter().all(Vec::is_empty), "{:?}", f.allows);
    }
}
