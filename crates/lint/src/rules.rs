//! The rule set.
//!
//! Two layers. The *per-file* rules are pure functions over the scanned
//! lexical model, scoped by workspace-relative path. The *semantic*
//! rules ([`graph_findings`], [`dead_pub`]) run over the workspace
//! [`Graph`]: hot-path membership is call-graph reachability from the
//! scheduler entry points (`simulate_*` / `run_until*` / `tick*`), not a
//! file-path heuristic, and every such finding names its witness chain
//! (`reachable via a → b → c`). Test modules (`#[cfg(test)]` regions)
//! are exempt everywhere: they assert behavior, including the float exit
//! and panic paths the production rules forbid.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{Graph, TRACKED_ENUM};
use crate::scan::ScannedFile;
use crate::Diagnostic;

/// The rules the engine knows, in reporting order.
pub const RULE_NAMES: [&str; 10] = [
    "no-float-time",
    "no-lossy-cast",
    "panic-policy-v2",
    "no-nondeterminism",
    "observer-gating",
    "alloc-in-hot-loop",
    "emission-parity",
    "dead-pub",
    "misplaced-suppression",
    "suppression",
];

/// Where a file sits in the workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Scope {
    /// `crates/<name>/…`.
    Crate(String),
    /// The root package's `src/`.
    RootSrc,
    /// Workspace-level integration tests (`tests/`).
    Tests,
    /// `shims/<name>/…`.
    Shim(String),
    /// Root-package examples (`examples/`).
    Examples,
    /// Anything else (benches, xtask-style helpers).
    Other,
}

/// Classifies a workspace-relative path.
#[must_use]
pub fn scope_of(path: &str) -> Scope {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts
            .next()
            .map_or(Scope::Other, |c| Scope::Crate(c.to_string())),
        Some("shims") => parts
            .next()
            .map_or(Scope::Other, |s| Scope::Shim(s.to_string())),
        Some("src") => Scope::RootSrc,
        Some("tests") => Scope::Tests,
        Some("examples") => Scope::Examples,
        _ => Scope::Other,
    }
}

fn in_crates(scope: &Scope, names: &[&str]) -> bool {
    matches!(scope, Scope::Crate(c) if names.iter().any(|n| n == c))
}

/// Exact-time crates where `f32`/`f64` may not appear: every boundary
/// comparison in the paper's analysis is exact, and one float corrupts
/// all of them. Bench/report crates (`bench`, `trace`) are excluded.
const FLOAT_FREE: [&str; 8] = [
    "numeric",
    "core",
    "sim",
    "online",
    "obs",
    "conformance",
    "runtime",
    "pfair",
];

/// Crates whose values carry times, lags and weights — `as` narrowing on
/// those must go through `try_from` with a diagnostic.
const VALUE_CRATES: [&str; 12] = [
    "numeric",
    "core",
    "sim",
    "online",
    "obs",
    "conformance",
    "analysis",
    "taskmodel",
    "workload",
    "maxflow",
    "runtime",
    "pfair",
];

/// Scheduling and campaign code must be bit-for-bit deterministic:
/// violations replay from a seed, so wall clocks, hash-order iteration
/// and (in `runtime`, whose *decisions* must stay a pure function of the
/// workload even when execution rides real threads) unjustified thread
/// spawns are banned.
const DETERMINISTIC: [&str; 6] = [
    "core",
    "sim",
    "online",
    "conformance",
    "workload",
    "runtime",
];

/// Crates that emit or forward [`SchedEvent`]s.
const OBSERVED: [&str; 3] = ["sim", "online", "obs"];

/// Function-name prefixes that make a function a *hot entry point*: the
/// drivers a simulation or online run spends its life inside. Everything
/// reachable from one of these through the call graph is hot.
pub const HOT_ENTRY_PREFIXES: [&str; 3] = ["simulate_", "run_until", "tick"];

/// Integer cast targets that can narrow the workspace's value types
/// (`i64` slots/quanta, `i128` rational components).
const NARROWING_TARGETS: [&str; 10] = [
    "i8", "i16", "i32", "i64", "u8", "u16", "u32", "u64", "usize", "isize",
];

/// Method-call markers that identify a time/lag/weight-typed expression.
const VALUE_METHODS: [&str; 6] = [
    ".num()",
    ".den()",
    ".floor()",
    ".ceil()",
    ".num_i64()",
    ".den_i64()",
];

/// Identifier fragments that identify a time/lag/weight-typed expression.
const VALUE_WORDS: [&str; 14] = [
    "lag",
    "time",
    "cost",
    "weight",
    "start",
    "deadline",
    "release",
    "tardiness",
    "theta",
    "horizon",
    "completion",
    "period",
    "slack",
    "waste",
];

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds `word` in `line` at word boundaries; returns byte offsets.
fn find_words(line: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find(word) {
        let pos = from + rel;
        let before_ok = line[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !is_word_char(c));
        let after_ok = line[pos + word.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_word_char(c));
        if before_ok && after_ok {
            out.push(pos);
        }
        from = pos + word.len();
    }
    out
}

/// The expression tail immediately preceding an `as` cast: the trailing
/// identifier/field/call chain, with balanced `(…)`/`[…]` groups included.
fn expr_tail(s: &str) -> String {
    let b: Vec<char> = s.trim_end().chars().collect();
    let mut i = b.len();
    while i > 0 {
        let c = b[i - 1];
        if c == ')' || c == ']' {
            let (open, close) = if c == ')' { ('(', ')') } else { ('[', ']') };
            let mut depth = 0;
            while i > 0 {
                let ch = b[i - 1];
                if ch == close {
                    depth += 1;
                } else if ch == open {
                    depth -= 1;
                    if depth == 0 {
                        i -= 1;
                        break;
                    }
                }
                i -= 1;
            }
            continue;
        }
        if is_word_char(c) || c == '.' {
            i -= 1;
            continue;
        }
        break;
    }
    b[i..].iter().collect()
}

/// Does `tail` read as a time/lag/weight value?
fn is_value_expr(tail: &str) -> bool {
    if VALUE_METHODS.iter().any(|m| tail.contains(m)) {
        return true;
    }
    tail.split(|c: char| !is_word_char(c))
        .filter(|w| !w.is_empty())
        .any(|w| {
            let lw = w.to_ascii_lowercase();
            VALUE_WORDS.iter().any(|v| lw.contains(v))
        })
}

/// Runs every per-file rule on one scanned file (suppressions are applied
/// later by the engine).
#[must_use]
pub fn per_file_findings(f: &ScannedFile) -> Vec<Diagnostic> {
    let scope = scope_of(&f.path);
    let mut out = Vec::new();
    let mut diag = |rule: &'static str, line: usize, message: String| {
        out.push(Diagnostic {
            rule,
            path: f.path.clone(),
            line: line + 1,
            message,
        });
    };

    for (i, line) in f.masked.iter().enumerate() {
        let ctx = f.ctx.get(i).copied().unwrap_or_default();
        if ctx.in_test {
            continue;
        }

        if in_crates(&scope, &FLOAT_FREE) {
            for ty in ["f32", "f64"] {
                if !find_words(line, ty).is_empty() {
                    diag(
                        "no-float-time",
                        i,
                        format!("`{ty}` in an exact-arithmetic crate: all times, lags and weights are exact rationals; floats break boundary comparisons"),
                    );
                }
            }
        }

        if in_crates(&scope, &VALUE_CRATES) || scope == Scope::RootSrc {
            for pos in find_words(line, "as") {
                let Some(target) = line[pos + 2..].split_whitespace().next() else {
                    continue;
                };
                let target: String = target.chars().take_while(|&c| is_word_char(c)).collect();
                if !NARROWING_TARGETS.contains(&target.as_str()) {
                    continue;
                }
                let tail = expr_tail(&line[..pos]);
                if is_value_expr(&tail) {
                    diag(
                        "no-lossy-cast",
                        i,
                        format!("`{} as {target}` narrows a time/lag/weight value silently; use `try_from` (or the `num_i64`/`den_i64` accessors) so overflow panics with a diagnostic", tail.trim()),
                    );
                }
            }
        }

        if in_crates(&scope, &DETERMINISTIC) {
            for ty in ["HashMap", "HashSet"] {
                if !find_words(line, ty).is_empty() {
                    diag(
                        "no-nondeterminism",
                        i,
                        format!("`{ty}` in scheduling/campaign code: iteration order varies across runs, breaking seed replay; use `BTreeMap`/`BTreeSet` or index by dense ids"),
                    );
                }
            }
            for pat in ["Instant::now", "SystemTime", "thread_rng", "from_entropy"] {
                if line.contains(pat) {
                    diag(
                        "no-nondeterminism",
                        i,
                        format!("`{pat}` injects wall-clock/entropy nondeterminism into code that must replay from a seed"),
                    );
                }
            }
            for pat in ["thread::spawn", "thread::scope", "crossbeam::scope"] {
                if line.contains(pat) {
                    diag(
                        "no-nondeterminism",
                        i,
                        format!("`{pat}` spawns threads in code whose decisions must replay from a seed; justify why scheduling stays deterministic (or replay-proven) despite the race"),
                    );
                }
            }
        }

        if in_crates(&scope, &OBSERVED) {
            if let Some(pos) = line.find(".on_event(") {
                let gated = ctx.enabled_gated
                    || ctx.in_on_event_fn
                    || line[..pos].contains("ENABLED")
                    || line.contains("fn on_event");
                if !gated {
                    diag(
                        "observer-gating",
                        i,
                        "observer emission not gated on `O::ENABLED`: ungated sites pay event-construction cost even under `NoopObserver`".to_string(),
                    );
                }
            }
        }
    }
    out
}

/// Is this function eligible for hot-path findings? Shims, tests,
/// examples and workspace-level test helpers assert behavior — only
/// production crate code answers for what happens inside a simulation.
fn hot_findings_apply(scope: &Scope) -> bool {
    matches!(scope, Scope::Crate(_))
}

/// The hot set: every non-test crate function whose name starts with a
/// [`HOT_ENTRY_PREFIXES`] prefix, plus everything reachable from one,
/// as a parent map for witness chains.
#[must_use]
pub fn hot_parents(scanned: &[ScannedFile], g: &Graph) -> BTreeMap<usize, usize> {
    let entries: Vec<usize> = (0..g.fns.len())
        .filter(|&i| {
            let f = &g.fns[i];
            !f.in_test
                && matches!(scope_of(&scanned[f.file].path), Scope::Crate(_))
                && HOT_ENTRY_PREFIXES.iter().any(|p| f.name.starts_with(p))
        })
        .collect();
    g.reach(&entries)
}

/// Semantic rules over the item graph: `panic-policy-v2` and
/// `alloc-in-hot-loop`, both scoped to the call-graph hot set, plus
/// `emission-parity` over the engines' [`TRACKED_ENUM`] construction
/// sites and the observer `match` coverage.
#[must_use]
pub fn graph_findings(scanned: &[ScannedFile], g: &Graph) -> Vec<Diagnostic> {
    let parents = hot_parents(scanned, g);
    let mut out = Vec::new();
    let mut seen: BTreeSet<(usize, usize, String)> = BTreeSet::new();

    for (fi, f) in g.fns.iter().enumerate() {
        if f.in_test || !parents.contains_key(&fi) {
            continue;
        }
        let file = &scanned[f.file];
        if !hot_findings_apply(&scope_of(&file.path)) {
            continue;
        }
        let chain = g.chain(&parents, fi);
        let via = if chain.contains('→') {
            format!("reachable via {chain}")
        } else {
            format!("a hot entry point, `{chain}`")
        };

        // panic-policy-v2: diagnostic-free panics anywhere in a hot body.
        for lineno in f.body.0..=f.body.1 {
            let Some(line) = file.masked.get(lineno - 1) else {
                continue;
            };
            if file.ctx.get(lineno - 1).is_some_and(|c| c.in_test) {
                continue;
            }
            let mut hit = |msg: String| {
                if seen.insert((f.file, lineno, msg.clone())) {
                    out.push(Diagnostic {
                        rule: "panic-policy-v2",
                        path: file.path.clone(),
                        line: lineno,
                        message: msg,
                    });
                }
            };
            if line.contains(".unwrap()") {
                hit(format!(
                    "bare `.unwrap()` on a hot path ({via}): use `.expect(\"<what invariant held and broke>\")`"
                ));
            }
            if line.contains(".expect(\"\")") {
                hit(format!(
                    "`.expect(\"\")` carries no diagnostic on a hot path ({via}); state the invariant that failed"
                ));
            }
            for bare in ["unreachable!()", "panic!()", "todo!(", "unimplemented!("] {
                if line.contains(bare) {
                    hit(format!(
                        "`{bare}…` without a message on a hot path ({via}); every panic must say which invariant broke"
                    ));
                }
            }
        }

        // alloc-in-hot-loop: allocation patterns inside loop bodies.
        for &(lo, hi) in &f.loops {
            for lineno in lo..=hi {
                let Some(line) = file.masked.get(lineno - 1) else {
                    continue;
                };
                if file.ctx.get(lineno - 1).is_some_and(|c| c.in_test) {
                    continue;
                }
                for pat in ["Vec::new(", "vec![", ".clone()", "format!(", ".to_string("] {
                    if line.contains(pat) {
                        let msg = format!(
                            "`{pat}…` allocates inside a loop on a hot path ({via}); hoist the allocation out of the loop or reuse a buffer"
                        );
                        if seen.insert((f.file, lineno, msg.clone())) {
                            out.push(Diagnostic {
                                rule: "alloc-in-hot-loop",
                                path: file.path.clone(),
                                line: lineno,
                                message: msg,
                            });
                        }
                    }
                }
            }
        }
    }

    out.extend(emission_parity(scanned, g));
    out
}

/// One engine whose emission vocabulary must stay in parity with the
/// others: its entry-point name prefix and the variants it is declared
/// exempt from emitting.
struct EngineSpec {
    name: &'static str,
    prefix: &'static str,
    exempt: &'static [&'static str],
}

/// The engines and their declared exemptions. The offline simulators
/// never see a release (their input is the full release sequence), so
/// `Released` is exempt there; the online schedulers emit everything.
/// `Blocked` appears in no engine set by construction: it is synthesized
/// by `BlockingObserver`, and the collection below is restricted to the
/// emitting crates (`sim`, `online`).
const ENGINES: [EngineSpec; 7] = [
    EngineSpec {
        name: "sfq",
        prefix: "simulate_sfq",
        exempt: &["Released", "Blocked"],
    },
    EngineSpec {
        name: "dvq",
        prefix: "simulate_dvq",
        exempt: &["Released", "Blocked"],
    },
    EngineSpec {
        name: "staggered",
        prefix: "simulate_staggered",
        exempt: &["Released", "Blocked"],
    },
    EngineSpec {
        name: "bf",
        prefix: "simulate_bf",
        exempt: &["Released", "Blocked"],
    },
    EngineSpec {
        name: "flow",
        prefix: "simulate_flow",
        exempt: &["Released", "Blocked"],
    },
    EngineSpec {
        name: "online-sfq",
        prefix: "tick",
        exempt: &["Blocked"],
    },
    EngineSpec {
        name: "online-dvq",
        prefix: "run_until",
        exempt: &["Blocked"],
    },
];

/// Crates whose function bodies count as engine emission sites.
const EMITTING: [&str; 2] = ["sim", "online"];

/// Cross-engine emission parity, in three parts: (1) every engine's
/// constructed-variant set, unioned with its declared exemptions, must
/// equal every other engine's; (2) an exemption an engine nonetheless
/// constructs is stale; (3) every `match` over the tracked enum in the
/// observer crate must enumerate all declared variants with no `_ =>`
/// wildcard — the vocabulary is closed, and a new variant must be a
/// compile-or-lint-time event in every built-in observer, not a silent
/// fall-through.
fn emission_parity(scanned: &[ScannedFile], g: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Per-engine constructed sets with one witness site each.
    struct EngineSet<'a> {
        spec: &'a EngineSpec,
        entry: usize, // fn index of the first entry, for anchoring
        constructed: BTreeMap<String, (usize, usize, String)>, // variant → (file, line, chain)
    }
    let mut sets: Vec<EngineSet<'_>> = Vec::new();
    for spec in &ENGINES {
        let entries: Vec<usize> = (0..g.fns.len())
            .filter(|&i| {
                let f = &g.fns[i];
                !f.in_test
                    && f.name.starts_with(spec.prefix)
                    && in_crates(&scope_of(&scanned[f.file].path), &EMITTING)
            })
            .collect();
        let Some(&entry) = entries.first() else {
            continue;
        };
        let parents = g.reach(&entries);
        let mut constructed: BTreeMap<String, (usize, usize, String)> = BTreeMap::new();
        for &fi in parents.keys() {
            let f = &g.fns[fi];
            if f.in_test || !in_crates(&scope_of(&scanned[f.file].path), &EMITTING) {
                continue;
            }
            for (variant, line) in &f.event_refs {
                constructed
                    .entry(variant.clone())
                    .or_insert_with(|| (f.file, *line, g.chain(&parents, fi)));
            }
        }
        sets.push(EngineSet {
            spec,
            entry,
            constructed,
        });
    }

    if sets.len() >= 2 {
        // Effective vocabulary union.
        let mut union: BTreeMap<String, String> = BTreeMap::new(); // variant → witness text
        for s in &sets {
            for (v, (file, line, chain)) in &s.constructed {
                union.entry(v.clone()).or_insert_with(|| {
                    format!(
                        "`{}` does ({}:{}, reachable via {})",
                        s.spec.name, scanned[*file].path, line, chain
                    )
                });
            }
        }
        for s in &sets {
            let entry_fn = &g.fns[s.entry];
            for (v, witness) in &union {
                let exempt = s.spec.exempt.contains(&v.as_str());
                if !exempt && !s.constructed.contains_key(v) {
                    out.push(Diagnostic {
                        rule: "emission-parity",
                        path: scanned[entry_fn.file].path.clone(),
                        line: entry_fn.line,
                        message: format!(
                            "engine `{}` never constructs `{TRACKED_ENUM}::{v}`, but {witness}; restore the emission site or declare a per-engine exemption in the lint",
                            s.spec.name
                        ),
                    });
                }
            }
            for v in s.spec.exempt {
                if let Some((file, line, chain)) = s.constructed.get(*v) {
                    out.push(Diagnostic {
                        rule: "emission-parity",
                        path: scanned[*file].path.clone(),
                        line: *line,
                        message: format!(
                            "engine `{}` declares `{TRACKED_ENUM}::{v}` exempt but constructs it here (reachable via {chain}); drop the stale exemption",
                            s.spec.name
                        ),
                    });
                }
            }
        }
    }

    // Observer match coverage against the declared variant vocabulary.
    let declared: Option<&crate::graph::EnumDef> = g.enums.iter().find(|e| e.name == TRACKED_ENUM);
    if let Some(decl) = declared {
        let all: BTreeSet<&str> = decl.variants.iter().map(String::as_str).collect();
        for m in &g.matches {
            if m.in_test || m.variants.is_empty() {
                continue;
            }
            if !in_crates(&scope_of(&scanned[m.file].path), &["obs"]) {
                continue;
            }
            if m.wildcard {
                out.push(Diagnostic {
                    rule: "emission-parity",
                    path: scanned[m.file].path.clone(),
                    line: m.line,
                    message: format!(
                        "`match` over `{TRACKED_ENUM}` uses a `_ =>` wildcard: the event vocabulary is closed; enumerate the variants so adding one is a lint-time event, not a silent fall-through"
                    ),
                });
            } else {
                let missing: Vec<&str> = all
                    .iter()
                    .copied()
                    .filter(|v| !m.variants.contains(*v))
                    .collect();
                if !missing.is_empty() {
                    out.push(Diagnostic {
                        rule: "emission-parity",
                        path: scanned[m.file].path.clone(),
                        line: m.line,
                        message: format!(
                            "`match` over `{TRACKED_ENUM}` does not handle variant(s) {}; the vocabulary is closed — handle them explicitly",
                            missing
                                .iter()
                                .map(|v| format!("`{v}`"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    });
                }
            }
        }
    }

    out
}

/// Dead-pub: every top-level fully-`pub` item in the crates, shims and
/// root `src/` must be referenced somewhere else in the workspace
/// (examples, tests and benches count as usage). This generalizes PR 4's
/// shim-drift rule — shims exist to cover exactly the API surface the
/// crates use, and crate exports nobody references are drift in the
/// other direction. Shim sources themselves count as usage (minus the
/// defining line) so helpers reached through macro expansions —
/// `$crate::…` paths in a `macro_rules!` body — are not false positives.
/// `#[proc_macro*]` entry points are exempt (referenced via derive
/// attributes, not by name), as is `main`.
#[must_use]
pub fn dead_pub(scanned: &[ScannedFile], g: &Graph) -> Vec<Diagnostic> {
    // Usage corpus: every masked source line of every scanned file.
    let corpus: String = scanned
        .iter()
        .flat_map(|f| f.masked.iter().map(|l| format!("{l}\n")))
        .collect();

    let mut out = Vec::new();
    for item in &g.pub_items {
        if item.in_test || item.name == "main" {
            continue;
        }
        let file = &scanned[item.file];
        let scope = scope_of(&file.path);
        let shim = matches!(scope, Scope::Shim(_));
        if !matches!(scope, Scope::Crate(_) | Scope::Shim(_) | Scope::RootSrc) {
            continue;
        }
        let total = find_words(&corpus, &item.name).len();
        let on_def_line = file
            .masked
            .get(item.line - 1)
            .map_or(0, |l| find_words(l, &item.name).len());
        if total <= on_def_line {
            let message = if shim {
                format!(
                    "shim item `{}` is referenced nowhere else in the workspace; shims may not grow surface beyond what the crates use",
                    item.name
                )
            } else {
                format!(
                    "pub {} `{}` is referenced nowhere else in the workspace; delete it, narrow it to `pub(crate)`, or justify the export",
                    item.kind, item.name
                )
            };
            out.push(Diagnostic {
                rule: "dead-pub",
                path: file.path.clone(),
                line: item.line,
                message,
            });
        }
    }
    out
}

/// Misplaced suppressions: an `allow(…)` suppression inside a `///`,
/// `//!` or `/** … */` doc comment is rendered documentation, not policy
/// — the engine never honors it there. Flag each one with the fix.
#[must_use]
pub fn misplaced_suppressions(scanned: &[ScannedFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in scanned {
        for (i, allows) in f.misplaced_allows.iter().enumerate() {
            for a in allows {
                out.push(Diagnostic {
                    rule: "misplaced-suppression",
                    path: f.path.clone(),
                    line: i + 1,
                    message: format!(
                        "`pfair-lint: allow({})` inside a doc comment is inert: suppressions are honored only in plain `//` comments on the finding's line or the line above; move it out of the docs",
                        a.rule
                    ),
                });
            }
        }
    }
    out
}
