//! The rule set.
//!
//! Each rule is a pure function over the scanned source model; scoping is
//! by workspace-relative path. Test modules (`#[cfg(test)]` regions) are
//! exempt everywhere: they assert behavior, including the float exit and
//! panic paths the production rules forbid.

use crate::scan::ScannedFile;
use crate::Diagnostic;

/// The rules the engine knows, in reporting order.
pub const RULE_NAMES: [&str; 7] = [
    "no-float-time",
    "no-lossy-cast",
    "panic-policy",
    "no-nondeterminism",
    "observer-gating",
    "shim-drift",
    "suppression",
];

/// Where a file sits in the workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Scope {
    /// `crates/<name>/…`.
    Crate(String),
    /// The root package's `src/`.
    RootSrc,
    /// Workspace-level integration tests (`tests/`).
    Tests,
    /// `shims/<name>/…`.
    Shim(String),
    /// Anything else (benches, xtask-style helpers).
    Other,
}

/// Classifies a workspace-relative path.
#[must_use]
pub fn scope_of(path: &str) -> Scope {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts
            .next()
            .map_or(Scope::Other, |c| Scope::Crate(c.to_string())),
        Some("shims") => parts
            .next()
            .map_or(Scope::Other, |s| Scope::Shim(s.to_string())),
        Some("src") => Scope::RootSrc,
        Some("tests") => Scope::Tests,
        _ => Scope::Other,
    }
}

fn in_crates(scope: &Scope, names: &[&str]) -> bool {
    matches!(scope, Scope::Crate(c) if names.iter().any(|n| n == c))
}

/// Exact-time crates where `f32`/`f64` may not appear: every boundary
/// comparison in the paper's analysis is exact, and one float corrupts
/// all of them. Bench/report crates (`bench`, `trace`) are excluded.
const FLOAT_FREE: [&str; 7] = [
    "numeric",
    "core",
    "sim",
    "online",
    "obs",
    "conformance",
    "pfair",
];

/// Crates whose values carry times, lags and weights — `as` narrowing on
/// those must go through `try_from` with a diagnostic.
const VALUE_CRATES: [&str; 11] = [
    "numeric",
    "core",
    "sim",
    "online",
    "obs",
    "conformance",
    "analysis",
    "taskmodel",
    "workload",
    "maxflow",
    "pfair",
];

/// Scheduler hot paths: a bare panic here aborts a simulation with no
/// clue which subtask or slot was involved.
const HOT_PATHS: [&str; 3] = ["core", "sim", "online"];

/// Scheduling and campaign code must be bit-for-bit deterministic:
/// violations replay from a seed, so wall clocks and hash-order iteration
/// are banned.
const DETERMINISTIC: [&str; 5] = ["core", "sim", "online", "conformance", "workload"];

/// Crates that emit or forward [`SchedEvent`]s.
const OBSERVED: [&str; 3] = ["sim", "online", "obs"];

/// Integer cast targets that can narrow the workspace's value types
/// (`i64` slots/quanta, `i128` rational components).
const NARROWING_TARGETS: [&str; 10] = [
    "i8", "i16", "i32", "i64", "u8", "u16", "u32", "u64", "usize", "isize",
];

/// Method-call markers that identify a time/lag/weight-typed expression.
const VALUE_METHODS: [&str; 6] = [
    ".num()",
    ".den()",
    ".floor()",
    ".ceil()",
    ".num_i64()",
    ".den_i64()",
];

/// Identifier fragments that identify a time/lag/weight-typed expression.
const VALUE_WORDS: [&str; 14] = [
    "lag",
    "time",
    "cost",
    "weight",
    "start",
    "deadline",
    "release",
    "tardiness",
    "theta",
    "horizon",
    "completion",
    "period",
    "slack",
    "waste",
];

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds `word` in `line` at word boundaries; returns byte offsets.
fn find_words(line: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find(word) {
        let pos = from + rel;
        let before_ok = line[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !is_word_char(c));
        let after_ok = line[pos + word.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_word_char(c));
        if before_ok && after_ok {
            out.push(pos);
        }
        from = pos + word.len();
    }
    out
}

/// The expression tail immediately preceding an `as` cast: the trailing
/// identifier/field/call chain, with balanced `(…)`/`[…]` groups included.
fn expr_tail(s: &str) -> String {
    let b: Vec<char> = s.trim_end().chars().collect();
    let mut i = b.len();
    while i > 0 {
        let c = b[i - 1];
        if c == ')' || c == ']' {
            let (open, close) = if c == ')' { ('(', ')') } else { ('[', ']') };
            let mut depth = 0;
            while i > 0 {
                let ch = b[i - 1];
                if ch == close {
                    depth += 1;
                } else if ch == open {
                    depth -= 1;
                    if depth == 0 {
                        i -= 1;
                        break;
                    }
                }
                i -= 1;
            }
            continue;
        }
        if is_word_char(c) || c == '.' {
            i -= 1;
            continue;
        }
        break;
    }
    b[i..].iter().collect()
}

/// Does `tail` read as a time/lag/weight value?
fn is_value_expr(tail: &str) -> bool {
    if VALUE_METHODS.iter().any(|m| tail.contains(m)) {
        return true;
    }
    tail.split(|c: char| !is_word_char(c))
        .filter(|w| !w.is_empty())
        .any(|w| {
            let lw = w.to_ascii_lowercase();
            VALUE_WORDS.iter().any(|v| lw.contains(v))
        })
}

/// Runs every per-file rule on one scanned file (suppressions are applied
/// later by the engine).
#[must_use]
pub fn per_file_findings(f: &ScannedFile) -> Vec<Diagnostic> {
    let scope = scope_of(&f.path);
    let mut out = Vec::new();
    let mut diag = |rule: &'static str, line: usize, message: String| {
        out.push(Diagnostic {
            rule,
            path: f.path.clone(),
            line: line + 1,
            message,
        });
    };

    for (i, line) in f.masked.iter().enumerate() {
        let ctx = f.ctx.get(i).copied().unwrap_or_default();
        if ctx.in_test {
            continue;
        }

        if in_crates(&scope, &FLOAT_FREE) {
            for ty in ["f32", "f64"] {
                if !find_words(line, ty).is_empty() {
                    diag(
                        "no-float-time",
                        i,
                        format!("`{ty}` in an exact-arithmetic crate: all times, lags and weights are exact rationals; floats break boundary comparisons"),
                    );
                }
            }
        }

        if in_crates(&scope, &VALUE_CRATES) || scope == Scope::RootSrc {
            for pos in find_words(line, "as") {
                let Some(target) = line[pos + 2..].split_whitespace().next() else {
                    continue;
                };
                let target: String = target.chars().take_while(|&c| is_word_char(c)).collect();
                if !NARROWING_TARGETS.contains(&target.as_str()) {
                    continue;
                }
                let tail = expr_tail(&line[..pos]);
                if is_value_expr(&tail) {
                    diag(
                        "no-lossy-cast",
                        i,
                        format!("`{} as {target}` narrows a time/lag/weight value silently; use `try_from` (or the `num_i64`/`den_i64` accessors) so overflow panics with a diagnostic", tail.trim()),
                    );
                }
            }
        }

        if in_crates(&scope, &HOT_PATHS) {
            if line.contains(".unwrap()") {
                diag(
                    "panic-policy",
                    i,
                    "bare `.unwrap()` in a scheduler hot path: use `.expect(\"<what invariant held and broke>\")`".to_string(),
                );
            }
            if line.contains(".expect(\"\")") {
                diag(
                    "panic-policy",
                    i,
                    "`.expect(\"\")` carries no diagnostic; state the invariant that failed"
                        .to_string(),
                );
            }
            for bare in ["unreachable!()", "panic!()", "todo!(", "unimplemented!("] {
                if line.contains(bare) {
                    diag(
                        "panic-policy",
                        i,
                        format!("`{bare}…` without a message in a scheduler hot path; every panic must say which invariant broke"),
                    );
                }
            }
        }

        if in_crates(&scope, &DETERMINISTIC) {
            for ty in ["HashMap", "HashSet"] {
                if !find_words(line, ty).is_empty() {
                    diag(
                        "no-nondeterminism",
                        i,
                        format!("`{ty}` in scheduling/campaign code: iteration order varies across runs, breaking seed replay; use `BTreeMap`/`BTreeSet` or index by dense ids"),
                    );
                }
            }
            for pat in ["Instant::now", "SystemTime", "thread_rng", "from_entropy"] {
                if line.contains(pat) {
                    diag(
                        "no-nondeterminism",
                        i,
                        format!("`{pat}` injects wall-clock/entropy nondeterminism into code that must replay from a seed"),
                    );
                }
            }
        }

        if in_crates(&scope, &OBSERVED) {
            if let Some(pos) = line.find(".on_event(") {
                let gated = ctx.enabled_gated
                    || ctx.in_on_event_fn
                    || line[..pos].contains("ENABLED")
                    || line.contains("fn on_event");
                if !gated {
                    diag(
                        "observer-gating",
                        i,
                        "observer emission not gated on `O::ENABLED`: ungated sites pay event-construction cost even under `NoopObserver`".to_string(),
                    );
                }
            }
        }
    }
    out
}

/// Shim-drift: every public top-level item a shim exports must be
/// referenced somewhere else in the workspace. Shims exist to cover
/// exactly the API surface the crates use; surface beyond that drifts
/// away from the real dependency unreviewed. Shim sources themselves
/// count as usage (minus the defining line) so helpers reached through
/// macro expansions — `$crate::…` paths in a `macro_rules!` body — are
/// not false positives.
#[must_use]
pub fn shim_drift(files: &[ScannedFile]) -> Vec<Diagnostic> {
    const ITEM_KINDS: [&str; 8] = [
        "fn", "struct", "enum", "trait", "type", "const", "static", "mod",
    ];
    // Usage corpus: every masked source, shims included.
    let corpus: String = files
        .iter()
        .flat_map(|f| f.masked.iter().map(|l| format!("{l}\n")))
        .collect();

    let mut out = Vec::new();
    for f in files {
        if !matches!(scope_of(&f.path), Scope::Shim(_)) {
            continue;
        }
        let mut pending_macro_export = false;
        for (i, line) in f.masked.iter().enumerate() {
            let ctx = f.ctx.get(i).copied().unwrap_or_default();
            if ctx.in_test {
                continue;
            }
            let t = line.trim_start();
            if t.starts_with("#[macro_export]") {
                pending_macro_export = true;
                continue;
            }
            let name = if let Some(rest) = t.strip_prefix("macro_rules!") {
                if !pending_macro_export {
                    continue;
                }
                pending_macro_export = false;
                rest.trim_start()
                    .chars()
                    .take_while(|&c| is_word_char(c))
                    .collect::<String>()
            } else {
                if t.starts_with('#') {
                    continue; // other attribute: keep pending_macro_export
                }
                pending_macro_export = false;
                if ctx.in_impl_or_fn {
                    continue; // methods ride their type's usage
                }
                let Some(rest) = t.strip_prefix("pub ") else {
                    continue;
                };
                let mut words = rest.split_whitespace();
                let Some(kind) = words.next() else { continue };
                if !ITEM_KINDS.contains(&kind) {
                    continue;
                }
                let Some(raw_name) = words.next() else {
                    continue;
                };
                raw_name
                    .chars()
                    .take_while(|&c| is_word_char(c))
                    .collect::<String>()
            };
            if name.is_empty() {
                continue;
            }
            // Proc-macro entry points are referenced via derive
            // attributes, not by name.
            let attr_context = f.raw[..i]
                .iter()
                .rev()
                .take(3)
                .any(|l| l.contains("#[proc_macro"));
            if attr_context {
                continue;
            }
            // Used iff the name appears beyond its own defining line.
            let total = find_words(&corpus, &name).len();
            let on_def_line = find_words(line, &name).len();
            if total <= on_def_line {
                out.push(Diagnostic {
                    rule: "shim-drift",
                    path: f.path.clone(),
                    line: i + 1,
                    message: format!(
                        "shim item `{name}` is referenced nowhere else in the workspace; shims may not grow surface beyond what the crates use"
                    ),
                });
            }
        }
    }
    out
}
