//! The token layer.
//!
//! One lexer pass produces everything the analyses above it consume:
//!
//! * a **token stream** (`Tok`) with 1-based line numbers — identifiers,
//!   lifetimes, literals and punctuation, comments dropped — which
//!   `graph` parses into the item graph;
//! * a **masked text** — comment and string interiors blanked,
//!   length- and line-preserving, quote delimiters kept — which the
//!   lexical rules pattern-match against;
//! * a **per-char class** distinguishing live code, plain `//` comments
//!   (where suppressions live), doc comments (where suppressions are
//!   inert and flagged as misplaced), and other masked text.
//!
//! Handling raw strings (`r"…"`, `r#"…"#`, any hash depth, `b`/`br`
//! prefixes), char literals containing braces or quotes (`'{'`, `'"'`,
//! escapes), and nested block comments here — once, byte-exactly — is
//! what keeps the brace/statement tracking in `scan` from
//! desynchronizing.

/// What a masked character position originally was. Suppressions are only
/// honored inside plain `//` comments — an `allow(…)` quoted in a doc
/// comment is inert (and flagged as misplaced), one in a string literal
/// is prose.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CharClass {
    /// Live code.
    #[default]
    Code,
    /// A plain `//` line comment (not `///`/`//!` docs).
    Comment,
    /// A `///`/`//!` doc comment, outside any ``` code fence.
    Doc,
    /// Block comments, fenced doc-comment text, string and char literals.
    Other,
}

/// A token kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including `_` and `r#raw` idents).
    Ident,
    /// A lifetime (`'a`), without the quote in `text`.
    Lifetime,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal (including suffixed forms like `3i64`).
    Num,
    /// A single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// The kind.
    pub kind: TokKind,
    /// The text: the identifier/number itself, the lifetime name, a
    /// single punctuation char, or `""` for string/char literals (their
    /// contents are policy-irrelevant and deliberately dropped).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this char?
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// The lexer's full output.
#[derive(Clone, Debug)]
pub struct Lexed {
    /// The token stream, comments and whitespace dropped.
    pub tokens: Vec<Tok>,
    /// Masked source: same length and line structure as the input,
    /// comment/string interiors blanked, quote delimiters kept.
    pub masked: String,
    /// One class per masked char.
    pub classes: Vec<CharClass>,
}

fn is_word_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source`. Never fails: unterminated literals and comments run
/// to end-of-input, masked but tokenless, so a half-edited file still
/// lints instead of crashing the linter.
#[must_use]
#[allow(clippy::too_many_lines)] // one linear scan; splitting it would scatter the masking invariants
pub fn lex(source: &str) -> Lexed {
    let b: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut cls: Vec<CharClass> = Vec::with_capacity(source.len());
    let mut tokens: Vec<Tok> = Vec::new();
    let mut line = 1usize;
    // ``` fences inside doc comments toggle Doc → Other: fenced lines are
    // example text, not (even inert) policy.
    let mut doc_fence = false;

    let keep_nl = |c: char| if c == '\n' { '\n' } else { ' ' };
    let mut i = 0;
    while i < b.len() {
        let c = b[i];

        // Line comments: `//`, `///`, `//!`. Four or more slashes are a
        // plain comment again, matching rustdoc.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            let doc = matches!(b.get(i + 2), Some('/') | Some('!')) && b.get(i + 3) != Some(&'/');
            let text: String = b[i..]
                .iter()
                .take_while(|&&ch| ch != '\n')
                .copied()
                .collect();
            let fence_marks = text.matches("```").count();
            let class = if !doc {
                CharClass::Comment
            } else if doc_fence || fence_marks > 0 {
                CharClass::Other
            } else {
                CharClass::Doc
            };
            if doc && fence_marks % 2 == 1 {
                doc_fence = !doc_fence;
            }
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                cls.push(class);
                i += 1;
            }
            continue;
        }

        // Block comments, nested to arbitrary depth.
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    cls.push(CharClass::Other);
                    cls.push(CharClass::Other);
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    cls.push(CharClass::Other);
                    cls.push(CharClass::Other);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    out.push(keep_nl(b[i]));
                    cls.push(CharClass::Other);
                    i += 1;
                }
            }
            continue;
        }

        // Raw strings and raw byte strings: [b]r#*" … "#*. A raw
        // *identifier* (`r#match`) falls through to the ident branch.
        let (raw_at, byte_prefix) = if c == 'r' {
            (Some(i), 0usize)
        } else if c == 'b' && b.get(i + 1) == Some(&'r') {
            (Some(i + 1), 1usize)
        } else {
            (None, 0)
        };
        if let Some(r_at) = raw_at {
            let mut j = r_at + 1;
            let mut hashes = 0usize;
            while b.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            // `r#ident` (raw identifier) has no quote after the hashes
            // and falls through to the ident branch.
            if b.get(j) == Some(&'"') {
                let start_line = line;
                // Opening `[b]r##…`: blanked; keep one visible quote so
                // the masked line still reads as a string position.
                for _ in 0..(byte_prefix + 1 + hashes) {
                    out.push(' ');
                    cls.push(CharClass::Other);
                }
                out.push('"');
                cls.push(CharClass::Other);
                j += 1;
                // Body: runs to `"` followed by exactly `hashes` hashes.
                // Raw strings have no escapes.
                loop {
                    match b.get(j) {
                        None => break,
                        Some(&'"') => {
                            let mut k = j + 1;
                            let mut h = 0usize;
                            while h < hashes && b.get(k) == Some(&'#') {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                out.push('"');
                                cls.push(CharClass::Other);
                                for _ in 0..hashes {
                                    out.push(' ');
                                    cls.push(CharClass::Other);
                                }
                                j = k;
                                break;
                            }
                            out.push(' ');
                            cls.push(CharClass::Other);
                            j += 1;
                        }
                        Some(&ch) => {
                            if ch == '\n' {
                                line += 1;
                            }
                            out.push(keep_nl(ch));
                            cls.push(CharClass::Other);
                            j += 1;
                        }
                    }
                }
                tokens.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                });
                i = j;
                continue;
            }
        }

        // Plain and byte strings, with escapes.
        if c == '"' || (c == 'b' && b.get(i + 1) == Some(&'"')) {
            let start_line = line;
            if c == 'b' {
                out.push(' ');
                cls.push(CharClass::Other);
                i += 1;
            }
            out.push('"');
            cls.push(CharClass::Other);
            i += 1;
            while i < b.len() {
                if b[i] == '\\' {
                    out.push(' ');
                    cls.push(CharClass::Other);
                    if let Some(&e) = b.get(i + 1) {
                        if e == '\n' {
                            line += 1;
                        }
                        out.push(keep_nl(e));
                        cls.push(CharClass::Other);
                    }
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push('"');
                    cls.push(CharClass::Other);
                    i += 1;
                    break;
                }
                if b[i] == '\n' {
                    line += 1;
                }
                out.push(keep_nl(b[i]));
                cls.push(CharClass::Other);
                i += 1;
            }
            tokens.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
            });
            continue;
        }

        // Char/byte-char literals vs lifetimes.
        if c == '\'' || (c == 'b' && b.get(i + 1) == Some(&'\'')) {
            let q_at = if c == 'b' { i + 1 } else { i };
            let next = b.get(q_at + 1).copied();
            let is_char = match next {
                Some('\\') => true,
                // `'x'` (incl. `'{'`, `'"'`): closing quote two ahead.
                Some(_) => b.get(q_at + 2) == Some(&'\''),
                None => false,
            };
            if is_char {
                let start_line = line;
                if c == 'b' {
                    out.push(' ');
                    cls.push(CharClass::Other);
                    i += 1;
                }
                out.push('\'');
                cls.push(CharClass::Other);
                i += 1;
                if b.get(i) == Some(&'\\') {
                    // Escape: blank to the closing quote.
                    while i < b.len() && b[i] != '\'' {
                        out.push(keep_nl(b[i]));
                        cls.push(CharClass::Other);
                        i += 1;
                    }
                } else {
                    out.push(' ');
                    cls.push(CharClass::Other);
                    i += 1;
                }
                if b.get(i) == Some(&'\'') {
                    out.push('\'');
                    cls.push(CharClass::Other);
                    i += 1;
                }
                tokens.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: start_line,
                });
                continue;
            }
            if c == '\'' {
                if next.is_some_and(is_word_start) {
                    // A lifetime: `'name`, kept as code.
                    let start_line = line;
                    out.push('\'');
                    cls.push(CharClass::Code);
                    i += 1;
                    let mut name = String::new();
                    while i < b.len() && is_word_char(b[i]) {
                        name.push(b[i]);
                        out.push(b[i]);
                        cls.push(CharClass::Code);
                        i += 1;
                    }
                    tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: name,
                        line: start_line,
                    });
                    continue;
                }
                // A stray quote (malformed source): pass through.
                out.push('\'');
                cls.push(CharClass::Code);
                tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: "'".to_string(),
                    line,
                });
                i += 1;
                continue;
            }
            // `b` not followed by a literal: plain identifier char, fall
            // through to the ident branch below.
        }

        // Identifiers and keywords (incl. raw `r#ident`).
        if is_word_start(c) {
            let start_line = line;
            let mut text = String::new();
            if c == 'r'
                && b.get(i + 1) == Some(&'#')
                && b.get(i + 2).copied().is_some_and(is_word_start)
            {
                i += 2; // skip `r#`; the token is the bare name
            }
            while i < b.len() && is_word_char(b[i]) {
                text.push(b[i]);
                out.push(b[i]);
                cls.push(CharClass::Code);
                i += 1;
            }
            tokens.push(Tok {
                kind: TokKind::Ident,
                text,
                line: start_line,
            });
            continue;
        }

        // Numbers (suffixes and separators ride along; `1..2` stops at
        // the range dots, `1.5` keeps its fraction).
        if c.is_ascii_digit() {
            let start_line = line;
            let mut text = String::new();
            while i < b.len() && (is_word_char(b[i])) {
                text.push(b[i]);
                out.push(b[i]);
                cls.push(CharClass::Code);
                i += 1;
            }
            if b.get(i) == Some(&'.') && b.get(i + 1).copied().is_some_and(|d| d.is_ascii_digit()) {
                text.push('.');
                out.push('.');
                cls.push(CharClass::Code);
                i += 1;
                while i < b.len() && is_word_char(b[i]) {
                    text.push(b[i]);
                    out.push(b[i]);
                    cls.push(CharClass::Code);
                    i += 1;
                }
            }
            tokens.push(Tok {
                kind: TokKind::Num,
                text,
                line: start_line,
            });
            continue;
        }

        if c == '\n' {
            line += 1;
            out.push('\n');
            cls.push(CharClass::Code);
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            out.push(' ');
            cls.push(CharClass::Code);
            i += 1;
            continue;
        }

        out.push(c);
        cls.push(CharClass::Code);
        tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    Lexed {
        tokens,
        masked: out,
        classes: cls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn masking_preserves_length_and_lines() {
        for src in [
            "let a = \"f64 inside\"; // f64 comment\nlet b = 1;\n",
            "let s = r#\"multi\nline { raw \"# ; done",
            "/* outer /* inner */ still outer */ code",
            "let c = '{'; let d = '\\n'; let e = b'\\'';",
        ] {
            let l = lex(src);
            assert_eq!(l.masked.chars().count(), src.chars().count(), "{src:?}");
            assert_eq!(
                l.masked.lines().count(),
                src.lines().count(),
                "line structure must survive masking: {src:?}"
            );
            assert_eq!(l.classes.len(), l.masked.chars().count());
        }
    }

    #[test]
    fn raw_strings_do_not_desynchronize_braces() {
        // The brace inside the raw string must not open a block, at any
        // hash depth, with or without a byte prefix.
        for src in [
            "let s = r\"{\"; let t = 1;",
            "let s = r#\"{ \"nested\" }\"#; let t = 1;",
            "let s = r##\"one \"# deep\"##; let t = 1;",
            "let s = br#\"{ bytes }\"#; let t = 1;",
        ] {
            let l = lex(src);
            assert!(!l.masked.contains('{'), "{src:?} → {:?}", l.masked);
            assert!(l.masked.contains("let t = 1;"), "{src:?} → {:?}", l.masked);
        }
    }

    #[test]
    fn char_literals_with_braces_and_quotes_stay_closed() {
        for src in [
            "match c { '{' => 1, '}' => 2, _ => 3 }",
            "let q = '\"'; let b = b'{'; let n = '\\u{1F600}';",
            "let apostrophe = '\\''; done();",
        ] {
            let l = lex(src);
            let opens = l.masked.matches('{').count();
            let closes = l.masked.matches('}').count();
            assert_eq!(
                opens, closes,
                "masked braces must balance for {src:?} → {:?}",
                l.masked
            );
        }
        // A lifetime is not a char literal.
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(l.masked.contains("<'a>"));
        assert_eq!(l.masked.matches('{').count(), 1);
    }

    #[test]
    fn nested_block_comments_unwind_fully() {
        let src = "/* depth1 /* depth2 { */ still masked { */ let x = 1; { }";
        let l = lex(src);
        assert!(l.masked.contains("let x = 1;"));
        // Only the code braces survive.
        assert_eq!(l.masked.matches('{').count(), 1);
        assert_eq!(l.masked.matches('}').count(), 1);
    }

    #[test]
    fn token_stream_basics() {
        let toks = kinds("pub fn f<'a>(x: i64) -> &'a str { x.max(3i64) }");
        assert!(toks.contains(&(TokKind::Ident, "fn".into())));
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokKind::Num, "3i64".into())));
        let toks = kinds("let r = r#match; call(r#type);");
        assert!(toks.contains(&(TokKind::Ident, "match".into())));
        assert!(toks.contains(&(TokKind::Ident, "type".into())));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = kinds("for i in 0..3i64 {}");
        assert!(toks.contains(&(TokKind::Num, "0".into())));
        assert!(toks.contains(&(TokKind::Num, "3i64".into())));
        let toks = kinds("let x = 1.5e3;");
        assert!(toks.contains(&(TokKind::Num, "1.5e3".into())));
    }

    #[test]
    fn doc_comments_classify_as_doc_and_fences_as_other() {
        let src = "/// plain doc line\n//! inner doc\n// plain comment\n/// ```text\n/// fenced example\n/// ```\n/// after fence\n";
        let l = lex(src);
        let line_class = |n: usize| {
            let start: usize = src.lines().take(n).map(|s| s.chars().count() + 1).sum();
            l.classes[start]
        };
        assert_eq!(line_class(0), CharClass::Doc);
        assert_eq!(line_class(1), CharClass::Doc);
        assert_eq!(line_class(2), CharClass::Comment);
        assert_eq!(line_class(3), CharClass::Other, "fence opener");
        assert_eq!(line_class(4), CharClass::Other, "fenced text");
        assert_eq!(line_class(5), CharClass::Other, "fence closer");
        assert_eq!(line_class(6), CharClass::Doc, "after the fence closes");
    }

    #[test]
    fn four_slashes_are_a_plain_comment() {
        let l = lex("//// separator\n");
        assert_eq!(l.classes[0], CharClass::Comment);
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"line\n1 to 2\";\nlet b = r#\"3\n4\"#;\nfn after() {}\n";
        let l = lex(src);
        let f = l
            .tokens
            .iter()
            .find(|t| t.is_ident("after"))
            .expect("token present");
        assert_eq!(f.line, 5);
    }
}
