//! `pfair-lint` — the workspace-native invariant linter.
//!
//! The Pfair reproduction rests on properties no general-purpose tool
//! checks: exact rational time (no floats, no silent narrowing),
//! seed-replayable determinism (no wall clocks, no hash-order iteration),
//! diagnostic panics in scheduler hot paths, compile-time-gated observer
//! emission, and vendored shims that cover exactly the API surface the
//! workspace uses. This crate is a small static-analysis pass over the
//! workspace's Rust sources that enforces those policies with
//! `file:line` diagnostics.
//!
//! ## Rules
//!
//! | rule | policy |
//! |------|--------|
//! | `no-float-time` | no `f32`/`f64` in the exact-arithmetic crates |
//! | `no-lossy-cast` | no `as` narrowing on time/lag/weight values |
//! | `panic-policy` | no bare `unwrap`/`expect("")`/`unreachable!()` in hot paths |
//! | `no-nondeterminism` | no `Instant::now`/`SystemTime`/`HashMap` in replayable code |
//! | `observer-gating` | every `on_event` emission gated on `O::ENABLED` |
//! | `shim-drift` | shims export nothing the workspace does not use |
//!
//! ## Suppression
//!
//! A finding is suppressed by a comment on the same line or the line
//! directly above:
//!
//! ```text
//! // pfair-lint: allow(no-float-time): the one sanctioned float exit, for reports only.
//! ```
//!
//! The justification after the `:` is mandatory; a suppression without
//! one, naming an unknown rule, or suppressing nothing is itself a
//! finding (rule `suppression`), so allows cannot rot in place.
//!
//! The linter is lexical by design — it masks comments and strings,
//! tracks brace-block contexts (`#[cfg(test)]` regions are exempt
//! everywhere), and needs no network, no `rustc` internals and no
//! third-party crates, so it runs first in CI on a bare toolchain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod rules;
pub mod scan;

pub use rules::{scope_of, Scope, RULE_NAMES};
pub use scan::{scan, ScannedFile};

/// One finding, pointing at a workspace-relative `file:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Lints a set of `(workspace-relative path, contents)` pairs: runs every
/// per-file rule plus the cross-file shim-drift rule, then applies and
/// polices suppressions. Diagnostics come back sorted by `(path, line)`.
#[must_use]
pub fn lint_files(files: &[(String, String)]) -> Vec<Diagnostic> {
    let scanned: Vec<ScannedFile> = files.iter().map(|(p, s)| scan(p, s)).collect();

    let mut raw: Vec<Diagnostic> = scanned.iter().flat_map(rules::per_file_findings).collect();
    raw.extend(rules::shim_drift(&scanned));

    // Apply suppressions: an allow on the finding's line or the line
    // directly above covers it.
    let mut used: BTreeSet<(String, usize, String)> = BTreeSet::new();
    let mut out: Vec<Diagnostic> = Vec::new();
    for d in raw {
        let Some(f) = scanned.iter().find(|f| f.path == d.path) else {
            out.push(d);
            continue;
        };
        let here = d.line - 1;
        let covering = [Some(here), here.checked_sub(1)]
            .into_iter()
            .flatten()
            .find(|&l| {
                f.allows
                    .get(l)
                    .is_some_and(|a| a.iter().any(|a| a.rule == d.rule))
            });
        match covering {
            Some(l) => {
                used.insert((d.path.clone(), l, d.rule.to_string()));
            }
            None => out.push(d),
        }
    }

    // Police the suppressions themselves.
    for f in &scanned {
        for (l, allows) in f.allows.iter().enumerate() {
            for a in allows {
                if !RULE_NAMES.contains(&a.rule.as_str()) {
                    out.push(Diagnostic {
                        rule: "suppression",
                        path: f.path.clone(),
                        line: l + 1,
                        message: format!("allow names unknown rule `{}`", a.rule),
                    });
                    continue;
                }
                if !a.justified {
                    out.push(Diagnostic {
                        rule: "suppression",
                        path: f.path.clone(),
                        line: l + 1,
                        message: format!(
                            "allow({}) lacks a justification; write `allow({}): <why this site is sound>`",
                            a.rule, a.rule
                        ),
                    });
                }
                if !used.contains(&(f.path.clone(), l, a.rule.clone())) {
                    out.push(Diagnostic {
                        rule: "suppression",
                        path: f.path.clone(),
                        line: l + 1,
                        message: format!(
                            "allow({}) suppresses nothing on this or the next line; remove it",
                            a.rule
                        ),
                    });
                }
            }
        }
    }

    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Collects the workspace's lintable sources under `root`: `crates/`,
/// `shims/`, the root package's `src/`, and `tests/`. Skips `target/`
/// and anything hidden.
///
/// # Errors
/// Propagates I/O errors from directory walking or file reads.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for top in ["crates", "shims", "src", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, std::fs::read_to_string(&path)?));
        }
    }
    Ok(())
}
