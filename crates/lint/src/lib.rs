//! `pfair-lint` — the workspace-native invariant linter.
//!
//! The Pfair reproduction rests on properties no general-purpose tool
//! checks: exact rational time (no floats, no silent narrowing),
//! seed-replayable determinism (no wall clocks, no hash-order iteration),
//! diagnostic panics in scheduler hot paths, compile-time-gated observer
//! emission, cross-engine event-emission parity, and vendored shims that
//! cover exactly the API surface the workspace uses. This crate is a
//! static-analysis pass over the workspace's Rust sources that enforces
//! those policies with `file:line` diagnostics.
//!
//! Two layers. A token layer ([`tokens`]) lexes each file — raw strings,
//! char literals and nested block comments included — into a masked view
//! plus a token stream. An item graph ([`graph`]) parses the streams into
//! every `fn`/`impl`/`struct`/`enum` in the workspace with a conservative
//! call graph, so *hot path* means "reachable from a
//! `simulate_*`/`run_until*`/`tick*` entry point", proven by a witness
//! chain in the diagnostic, not a file-path guess.
//!
//! ## Rules
//!
//! | rule | policy |
//! |------|--------|
//! | `no-float-time` | no `f32`/`f64` in the exact-arithmetic crates |
//! | `no-lossy-cast` | no `as` narrowing on time/lag/weight values |
//! | `panic-policy-v2` | no bare `unwrap`/`expect("")`/`unreachable!()` reachable from a hot entry point |
//! | `no-nondeterminism` | no `Instant::now`/`SystemTime`/`HashMap` in replayable code |
//! | `observer-gating` | every `on_event` emission gated on `O::ENABLED` |
//! | `alloc-in-hot-loop` | no `Vec::new`/`vec![]`/`clone()`/`format!`/`to_string` in loops reachable from a hot entry point |
//! | `emission-parity` | engines construct the same `SchedEvent` variants modulo declared exemptions; observer `match`es enumerate the closed vocabulary |
//! | `dead-pub` | no unreferenced top-level `pub` items anywhere in the workspace |
//! | `misplaced-suppression` | no inert `allow(…)` comments inside doc comments |
//!
//! ## Suppression
//!
//! A finding is suppressed by a comment on the same line or the line
//! directly above:
//!
//! ```text
//! // pfair-lint: allow(no-float-time): the one sanctioned float exit, for reports only.
//! ```
//!
//! The justification after the `:` is mandatory; a suppression without
//! one, naming an unknown rule, or suppressing nothing is itself a
//! finding (rule `suppression`), so allows cannot rot in place. Only
//! plain `//` comments count — an allow inside a `///` doc comment is
//! rendered documentation, and the `misplaced-suppression` rule flags it.
//!
//! ## Machine-readable output and the ratchet baseline
//!
//! `pfair-lint --json` emits the findings as a JSON array with the
//! stable per-finding schema `{file, line, rule, message, suppression}`
//! (`suppression` is the ready-to-paste allow comment). A checked-in
//! baseline (`lint-baseline.txt`) lets the rule set run strict without a
//! flag day: CI fails on any finding not in the baseline *and* on any
//! baseline entry that no longer matches a finding, so the baseline can
//! only shrink.
//!
//! The linter needs no network, no `rustc` internals and no third-party
//! crates, so it runs first in CI on a bare toolchain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod graph;
pub mod rules;
pub mod scan;
pub mod tokens;

pub use graph::Graph;
pub use rules::{scope_of, Scope, RULE_NAMES};
pub use scan::{scan, ScannedFile};
pub use tokens::{lex, CharClass};

/// One finding, pointing at a workspace-relative `file:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Lints a set of `(workspace-relative path, contents)` pairs: runs every
/// per-file rule, the graph rules (hot-path panics and allocations,
/// emission parity), dead-pub and misplaced-suppression, then applies and
/// polices suppressions. Diagnostics come back sorted by `(path, line)`.
#[must_use]
pub fn lint_files(files: &[(String, String)]) -> Vec<Diagnostic> {
    let scanned: Vec<ScannedFile> = files.iter().map(|(p, s)| scan(p, s)).collect();
    let g = Graph::build(&scanned);

    let mut raw: Vec<Diagnostic> = scanned.iter().flat_map(rules::per_file_findings).collect();
    raw.extend(rules::graph_findings(&scanned, &g));
    raw.extend(rules::dead_pub(&scanned, &g));
    raw.extend(rules::misplaced_suppressions(&scanned));

    // Apply suppressions: an allow on the finding's line or the line
    // directly above covers it.
    let mut used: BTreeSet<(String, usize, String)> = BTreeSet::new();
    let mut out: Vec<Diagnostic> = Vec::new();
    for d in raw {
        let Some(f) = scanned.iter().find(|f| f.path == d.path) else {
            out.push(d);
            continue;
        };
        let here = d.line - 1;
        let covering = [Some(here), here.checked_sub(1)]
            .into_iter()
            .flatten()
            .find(|&l| {
                f.allows
                    .get(l)
                    .is_some_and(|a| a.iter().any(|a| a.rule == d.rule))
            });
        match covering {
            Some(l) => {
                used.insert((d.path.clone(), l, d.rule.to_string()));
            }
            None => out.push(d),
        }
    }

    // Police the suppressions themselves.
    for f in &scanned {
        for (l, allows) in f.allows.iter().enumerate() {
            for a in allows {
                if !RULE_NAMES.contains(&a.rule.as_str()) {
                    out.push(Diagnostic {
                        rule: "suppression",
                        path: f.path.clone(),
                        line: l + 1,
                        message: format!("allow names unknown rule `{}`", a.rule),
                    });
                    continue;
                }
                if !a.justified {
                    out.push(Diagnostic {
                        rule: "suppression",
                        path: f.path.clone(),
                        line: l + 1,
                        message: format!(
                            "allow({}) lacks a justification; write `allow({}): <why this site is sound>`",
                            a.rule, a.rule
                        ),
                    });
                }
                if !used.contains(&(f.path.clone(), l, a.rule.clone())) {
                    out.push(Diagnostic {
                        rule: "suppression",
                        path: f.path.clone(),
                        line: l + 1,
                        message: format!(
                            "allow({}) suppresses nothing on this or the next line; remove it",
                            a.rule
                        ),
                    });
                }
            }
        }
    }

    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Renders diagnostics as a JSON array with the stable schema
/// `{file, line, rule, message, suppression}`. The `suppression` field
/// is the ready-to-paste allow comment for the finding (the `<why…>`
/// placeholder included — the justification is the author's to write).
/// Hand-rolled so the linter keeps its zero-dependency build; the
/// round-trip test deserializes it through the workspace serde shims.
#[must_use]
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"suppression\": \"{}\"}}",
            esc(&d.path),
            d.line,
            esc(d.rule),
            esc(&d.message),
            esc(&format!(
                "// pfair-lint: allow({}): <why this site is sound>",
                d.rule
            )),
        ));
    }
    if !diags.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

/// One entry of the ratchet baseline: a known finding CI tolerates while
/// it is being burned down. Line numbers are deliberately absent so
/// unrelated edits don't churn the file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// The rule name.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// The exact diagnostic message.
    pub message: String,
}

/// Parses a baseline file: one `rule<TAB>file<TAB>message` entry per
/// line; blank lines and `#` comments are skipped.
///
/// # Errors
/// Returns the 1-based line number and reason for a malformed entry.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.splitn(3, '\t');
        let (Some(rule), Some(path), Some(message)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "line {}: expected `rule<TAB>file<TAB>message`, got `{t}`",
                i + 1
            ));
        };
        out.push(BaselineEntry {
            rule: rule.to_string(),
            path: path.to_string(),
            message: message.to_string(),
        });
    }
    Ok(out)
}

/// The result of filtering findings through the ratchet baseline.
#[derive(Clone, Debug, Default)]
pub struct BaselineSplit {
    /// Findings not covered by the baseline — these fail the run.
    pub new: Vec<Diagnostic>,
    /// Findings the baseline tolerates.
    pub baselined: Vec<Diagnostic>,
    /// Baseline entries matching no current finding — the ratchet: a
    /// fixed finding must leave the baseline, so stale entries also fail
    /// the run.
    pub stale: Vec<BaselineEntry>,
}

/// Splits `diags` against the baseline. An entry covers every finding
/// with the same `(rule, path, message)`; entries covering nothing are
/// stale.
#[must_use]
pub fn apply_baseline(diags: &[Diagnostic], baseline: &[BaselineEntry]) -> BaselineSplit {
    let mut split = BaselineSplit::default();
    let mut used: Vec<bool> = vec![false; baseline.len()];
    for d in diags {
        let hit = baseline
            .iter()
            .position(|b| b.rule == d.rule && b.path == d.path && b.message == d.message);
        match hit {
            Some(i) => {
                used[i] = true;
                split.baselined.push(d.clone());
            }
            None => split.new.push(d.clone()),
        }
    }
    for (i, b) in baseline.iter().enumerate() {
        if !used[i] {
            split.stale.push(b.clone());
        }
    }
    split
}

/// Collects the workspace's lintable sources under `root`: `crates/`,
/// `shims/`, the root package's `src/`, `tests/`, `examples/` and
/// `benches/`. Skips `target/` and anything hidden.
///
/// # Errors
/// Propagates I/O errors from directory walking or file reads.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for top in ["crates", "shims", "src", "tests", "examples", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, std::fs::read_to_string(&path)?));
        }
    }
    Ok(())
}
