//! The item graph: every `fn`/`impl`/`struct`/`enum` in the workspace,
//! with a conservative call graph over the functions.
//!
//! Built from the token stream (no `rustc`, no dependencies) by tracking
//! brace frames whose headers — the tokens since the last `;`/`{`/`}`
//! boundary — classify each block as a module, function, impl, trait,
//! enum, `match`, loop, or plain block. On top of the items:
//!
//! * **calls** are collected per function body (free calls, `.method(…)`
//!   calls, and `Path::to::fn(…)` calls, turbofish included) and resolved
//!   *by name*, conservatively: a method call edges to every workspace
//!   method of that name, a `Type::f` call to the impls of `Type` when
//!   the workspace knows the type (falling back to free functions for
//!   module paths). Over-approximation is the safe direction here — a
//!   spurious edge can only make the hot set larger;
//! * **reachability** (`reach`) BFS-walks the resolved edges from a set
//!   of entry functions, recording parent pointers so every diagnostic
//!   can print the witness chain (`reachable via a → b → c`);
//! * **loops**, **`match` expressions over tracked enums**, **enum
//!   variant declarations**, and **top-level `pub` items** are recorded
//!   for the `alloc-in-hot-loop`, `emission-parity`, and `dead-pub`
//!   rules.
//!
//! Function bodies templated inside `macro_rules!` definitions are
//! deliberately not graphed (their `$metavariables` are not items); the
//! text-corpus usage counting in `dead-pub` still sees them.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::scan::ScannedFile;
use crate::tokens::{Tok, TokKind};

/// The enum whose construction sites and `match` coverage the
/// emission-parity rule tracks.
pub const TRACKED_ENUM: &str = "SchedEvent";

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The qualifying path segment directly before the name
    /// (`Rat::int(…)` → `Rat`), if any. `Self` is resolved against the
    /// caller's impl type.
    pub qual: Option<String>,
    /// The called name.
    pub name: String,
    /// Whether this was a `.name(…)` method call.
    pub method: bool,
    /// 1-based line.
    pub line: usize,
}

/// One function in the workspace.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Index into the scanned-file slice the graph was built from.
    pub file: usize,
    /// 1-based line of the `fn` header's opening brace.
    pub line: usize,
    /// 1-based inclusive line range of the body (opening to closing
    /// brace).
    pub body: (usize, usize),
    /// Declared `pub` (unrestricted — `pub(crate)` and narrower count as
    /// private).
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` region (directly or via an enclosing
    /// item).
    pub in_test: bool,
    /// The `impl` target type, for methods.
    pub impl_ty: Option<String>,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Line ranges of `for`/`while`/`loop` bodies in this function
    /// (nested loops appear once per loop).
    pub loops: Vec<(usize, usize)>,
    /// `TRACKED_ENUM::Variant` occurrences in the body: `(variant, line)`.
    pub event_refs: Vec<(String, usize)>,
}

/// A top-level item (for `dead-pub`).
#[derive(Clone, Debug)]
pub struct PubItem {
    /// Item kind keyword (`fn`, `struct`, `enum`, `trait`, `type`,
    /// `const`, `static`, `mod`, `macro_rules`).
    pub kind: String,
    /// The item's name.
    pub name: String,
    /// Index into the scanned-file slice.
    pub file: usize,
    /// 1-based line of the item header.
    pub line: usize,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// An enum declaration with its variants.
#[derive(Clone, Debug)]
pub struct EnumDef {
    /// The enum's name.
    pub name: String,
    /// Index into the scanned-file slice.
    pub file: usize,
    /// 1-based line.
    pub line: usize,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
}

/// A `match` expression that mentions the tracked enum.
#[derive(Clone, Debug)]
pub struct MatchExpr {
    /// Index into the scanned-file slice.
    pub file: usize,
    /// 1-based line of the `match` block's opening brace.
    pub line: usize,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// `TRACKED_ENUM::Variant` names mentioned directly under this match
    /// (not under a nested match).
    pub variants: BTreeSet<String>,
    /// Whether a top-level `_ =>` arm is present.
    pub wildcard: bool,
}

/// The workspace item graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Every function, across all files.
    pub fns: Vec<FnItem>,
    /// Top-level `pub` items.
    pub pub_items: Vec<PubItem>,
    /// Enum declarations (with variants).
    pub enums: Vec<EnumDef>,
    /// `match` expressions mentioning the tracked enum.
    pub matches: Vec<MatchExpr>,
    /// Resolved adjacency: `edges[f]` are the functions `f` may call.
    pub edges: Vec<Vec<usize>>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum FrameKind {
    Mod,
    Fn(usize),
    Impl(Option<String>),
    Trait,
    Enum(usize),
    Struct,
    Match(usize),
    Loop(usize),
    Macro,
    Block,
}

struct Frame {
    kind: FrameKind,
    test: bool,
    paren0: i32,
    bracket0: i32,
    expect_variant: bool,
}

const KEYWORDS: [&str; 34] = [
    "if", "while", "for", "match", "loop", "return", "fn", "let", "move", "ref", "in", "as",
    "else", "unsafe", "break", "continue", "use", "pub", "impl", "struct", "enum", "trait", "type",
    "const", "static", "mod", "where", "dyn", "box", "await", "async", "self", "super", "crate",
];

const ITEM_KINDS: [&str; 9] = [
    "fn",
    "struct",
    "enum",
    "trait",
    "type",
    "const",
    "static",
    "mod",
    "macro_rules",
];

impl Graph {
    /// Builds the item graph over `files` and resolves the call edges.
    #[must_use]
    pub fn build(files: &[ScannedFile]) -> Graph {
        let mut g = Graph::default();
        for (fi, f) in files.iter().enumerate() {
            parse_file(&mut g, fi, &f.tokens);
        }
        g.resolve();
        g
    }

    /// Name → function indices, for entry-point selection.
    #[must_use]
    pub fn fns_named(&self, pred: impl Fn(&str) -> bool) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| pred(&self.fns[i].name))
            .collect()
    }

    /// BFS over the call edges from `entries`; returns a parent map
    /// (`fn → caller`, entries map to themselves). Test functions are
    /// never traversed *into* as entries but are reachable like any
    /// other node (the rules filter findings by context).
    #[must_use]
    pub fn reach(&self, entries: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut sorted: Vec<usize> = entries.to_vec();
        sorted.sort_unstable();
        for &e in &sorted {
            if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(e) {
                v.insert(e);
                queue.push_back(e);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &c in &self.edges[f] {
                if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(c) {
                    v.insert(f);
                    queue.push_back(c);
                }
            }
        }
        parent
    }

    /// The witness chain `entry → … → f` as function names, from a
    /// parent map produced by [`Graph::reach`].
    #[must_use]
    pub fn chain(&self, parents: &BTreeMap<usize, usize>, f: usize) -> String {
        let mut names: Vec<&str> = Vec::new();
        let mut cur = f;
        loop {
            names.push(&self.fns[cur].name);
            let p = parents.get(&cur).copied().unwrap_or(cur);
            if p == cur {
                break;
            }
            cur = p;
        }
        names.reverse();
        names.join(" → ")
    }

    fn resolve(&mut self) {
        // Known workspace types: impl targets plus declared type names.
        let mut type_names: BTreeSet<&str> = BTreeSet::new();
        for it in &self.pub_items {
            if matches!(it.kind.as_str(), "struct" | "enum" | "trait") {
                type_names.insert(&it.name);
            }
        }
        for f in &self.fns {
            if let Some(t) = &f.impl_ty {
                type_names.insert(t);
            }
        }
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
        }
        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(self.fns.len());
        for f in &self.fns {
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for call in &f.calls {
                let Some(cands) = by_name.get(call.name.as_str()) else {
                    continue;
                };
                let qual = match call.qual.as_deref() {
                    Some("Self") => f.impl_ty.clone(),
                    q => q.map(str::to_string),
                };
                match qual {
                    Some(q) => {
                        let of_type: Vec<usize> = cands
                            .iter()
                            .copied()
                            .filter(|&c| self.fns[c].impl_ty.as_deref() == Some(q.as_str()))
                            .collect();
                        if !of_type.is_empty() {
                            out.extend(of_type);
                        } else if !type_names.contains(q.as_str()) {
                            // A module path (`emit::flush_ends`): free fns.
                            out.extend(
                                cands
                                    .iter()
                                    .copied()
                                    .filter(|&c| self.fns[c].impl_ty.is_none()),
                            );
                        }
                        // A known type with no such workspace method:
                        // std/shim associated fn or a variant constructor —
                        // no edge.
                    }
                    None if call.method => {
                        // `.name(…)`: every workspace method of that name
                        // (dyn dispatch over-approximation).
                        out.extend(
                            cands
                                .iter()
                                .copied()
                                .filter(|&c| self.fns[c].impl_ty.is_some()),
                        );
                    }
                    None => {
                        out.extend(
                            cands
                                .iter()
                                .copied()
                                .filter(|&c| self.fns[c].impl_ty.is_none()),
                        );
                    }
                }
            }
            edges.push(out.into_iter().collect());
        }
        self.edges = edges;
    }
}

fn buf_has_ident(toks: &[Tok], buf: &[usize], name: &str) -> bool {
    buf.iter().any(|&k| toks[k].is_ident(name))
}

fn buf_has_cfg_test(toks: &[Tok], buf: &[usize]) -> bool {
    buf.windows_cfg_test(toks)
}

trait CfgTest {
    fn windows_cfg_test(&self, toks: &[Tok]) -> bool;
}

impl CfgTest for [usize] {
    fn windows_cfg_test(&self, toks: &[Tok]) -> bool {
        // `cfg` `(` … `test` …: attribute tokens land in the header
        // buffer, so an adjacency scan suffices.
        self.iter().enumerate().any(|(i, &k)| {
            toks[k].is_ident("cfg")
                && self[i + 1..]
                    .iter()
                    .take(4)
                    .any(|&k2| toks[k2].is_ident("test"))
        })
    }
}

/// The impl target's last path segment: `impl<T> a::b::Ty<T> for …` and
/// `impl Tr for Ty` both yield `Ty`.
fn impl_target(toks: &[Tok], buf: &[usize]) -> Option<String> {
    let pos = buf.iter().position(|&k| toks[k].is_ident("impl"))?;
    let rest = &buf[pos + 1..];
    let mut i = 0;
    // Skip the generic parameter list, tolerating `->` inside bounds.
    if rest.first().is_some_and(|&k| toks[k].is_punct('<')) {
        let mut depth = 0i32;
        let mut prev_minus = false;
        while i < rest.len() {
            let t = &toks[rest[i]];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !prev_minus {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            prev_minus = t.is_punct('-');
            i += 1;
        }
    }
    // If a `for` appears at angle depth 0, the type path follows it.
    let mut angle = 0i32;
    let mut prev_minus = false;
    let mut start = i;
    for (j, &k) in rest.iter().enumerate().skip(i) {
        let t = &toks[k];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !prev_minus {
            angle -= 1;
        } else if angle == 0 && t.is_ident("for") {
            start = j + 1;
        }
        prev_minus = t.is_punct('-');
    }
    // Last path segment before the type's own generics.
    let mut name: Option<String> = None;
    let mut angle = 0i32;
    let mut prev_minus = false;
    for &k in rest.iter().skip(start) {
        let t = &toks[k];
        if t.is_punct('<') {
            angle += 1;
            if angle > 0 && name.is_some() {
                break;
            }
        } else if t.is_punct('>') && !prev_minus {
            angle -= 1;
        } else if angle == 0 && t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
            name = Some(t.text.clone());
        } else if angle == 0 && t.is_punct('&') {
            // `impl Tr for &mut O` — keep scanning.
        }
        prev_minus = t.is_punct('-');
    }
    name
}

fn innermost_fn(frames: &[Frame]) -> Option<usize> {
    frames.iter().rev().find_map(|fr| match fr.kind {
        FrameKind::Fn(i) => Some(i),
        _ => None,
    })
}

#[allow(clippy::too_many_lines)] // one linear scan over the token stream; the frame transitions read best together
fn parse_file(g: &mut Graph, fi: usize, toks: &[Tok]) {
    let mut frames: Vec<Frame> = Vec::new();
    let mut buf: Vec<usize> = Vec::new();
    let mut paren = 0i32;
    let mut bracket = 0i32;

    let all_mod = |frames: &[Frame]| frames.iter().all(|f| f.kind == FrameKind::Mod);
    let in_macro = |frames: &[Frame]| frames.iter().any(|f| f.kind == FrameKind::Macro);

    let mut k = 0usize;
    while k < toks.len() {
        let t = &toks[k];

        // --- pattern detection (pure lookaround, consumes nothing) ---
        if t.kind == TokKind::Ident && !in_macro(&frames) {
            let prev = k.checked_sub(1).map(|p| &toks[p]);
            let at_path_head = !prev.is_some_and(|p| p.is_punct(':'));
            let is_method = prev.is_some_and(|p| p.is_punct('.'));
            let after_fn_kw = prev.is_some_and(|p| p.is_ident("fn"));
            if at_path_head && !after_fn_kw {
                // Collect the path `a::b::c`.
                let mut segs: Vec<&str> = vec![&t.text];
                let mut j = k;
                while toks.get(j + 1).is_some_and(|x| x.is_punct(':'))
                    && toks.get(j + 2).is_some_and(|x| x.is_punct(':'))
                    && toks.get(j + 3).is_some_and(|x| x.kind == TokKind::Ident)
                {
                    segs.push(&toks[j + 3].text);
                    j += 3;
                }
                // Tracked-enum reference: `SchedEvent::Variant` anywhere.
                if segs.len() >= 2 && segs[0] == TRACKED_ENUM {
                    let variant = segs[1].to_string();
                    if let Some(fidx) = innermost_fn(&frames) {
                        g.fns[fidx].event_refs.push((variant.clone(), t.line));
                    }
                    if let Some(m) = frames.iter().rev().find_map(|fr| match fr.kind {
                        FrameKind::Match(i) => Some(i),
                        _ => None,
                    }) {
                        g.matches[m].variants.insert(variant);
                    }
                }
                // Turbofish `::<…>` between the path and the call parens.
                let mut end = j;
                if toks.get(j + 1).is_some_and(|x| x.is_punct(':'))
                    && toks.get(j + 2).is_some_and(|x| x.is_punct(':'))
                    && toks.get(j + 3).is_some_and(|x| x.is_punct('<'))
                {
                    let mut depth = 0i32;
                    let mut m = j + 3;
                    let mut prev_minus = false;
                    while m < toks.len() {
                        let x = &toks[m];
                        if x.is_punct('<') {
                            depth += 1;
                        } else if x.is_punct('>') && !prev_minus {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        prev_minus = x.is_punct('-');
                        m += 1;
                    }
                    end = m;
                }
                let called = toks.get(end + 1).is_some_and(|x| x.is_punct('('));
                let is_macro_call = toks.get(end + 1).is_some_and(|x| x.is_punct('!'));
                let name = (*segs.last().expect("path has at least one segment")).to_string();
                let record = if segs.len() >= 2 {
                    // Qualified paths are informative even without parens
                    // (`map(Rat::int)` passes the fn by name).
                    !is_macro_call
                } else {
                    called && !is_macro_call && !KEYWORDS.contains(&name.as_str())
                };
                if record {
                    if let Some(fidx) = innermost_fn(&frames) {
                        let qual = if segs.len() >= 2 {
                            Some(segs[segs.len() - 2].to_string())
                        } else {
                            None
                        };
                        g.fns[fidx].calls.push(CallSite {
                            qual,
                            name,
                            method: is_method && segs.len() == 1,
                            line: t.line,
                        });
                    }
                }
            }
            // Enum variant declarations.
            if let Some(fr) = frames.last_mut() {
                if let FrameKind::Enum(ei) = fr.kind {
                    if fr.expect_variant
                        && paren == fr.paren0
                        && bracket == fr.bracket0
                        && at_path_head
                    {
                        g.enums[ei].variants.push(t.text.clone());
                        fr.expect_variant = false;
                    }
                }
            }
            // Top-level wildcard arm in a tracked match.
            if t.text == "_"
                && toks.get(k + 1).is_some_and(|x| x.is_punct('='))
                && toks.get(k + 2).is_some_and(|x| x.is_punct('>'))
            {
                if let Some(fr) = frames.last() {
                    if let FrameKind::Match(mi) = fr.kind {
                        if paren == fr.paren0 && bracket == fr.bracket0 {
                            g.matches[mi].wildcard = true;
                        }
                    }
                }
            }
        }

        // --- frame machinery ---
        if t.kind == TokKind::Punct {
            let c = t.text.chars().next().unwrap_or(' ');
            match c {
                '(' => {
                    paren += 1;
                    buf.push(k);
                }
                ')' => {
                    paren -= 1;
                    buf.push(k);
                }
                '[' => {
                    bracket += 1;
                    buf.push(k);
                }
                ']' => {
                    bracket -= 1;
                    buf.push(k);
                }
                ',' => {
                    if let Some(fr) = frames.last_mut() {
                        if matches!(fr.kind, FrameKind::Enum(_))
                            && paren == fr.paren0
                            && bracket == fr.bracket0
                        {
                            fr.expect_variant = true;
                        }
                    }
                    buf.push(k);
                }
                '{' => {
                    let parent_test = frames.last().is_some_and(|f| f.test);
                    let test = parent_test || buf_has_cfg_test(toks, &buf);
                    let is_proc_macro = buf.iter().any(|&b| toks[b].text.starts_with("proc_macro"));
                    let kind = classify_header(g, fi, toks, &buf, &frames, t.line, test);
                    if all_mod(&frames) && !in_macro(&frames) && !is_proc_macro {
                        record_item(g, fi, toks, &buf, test, &kind);
                    }
                    frames.push(Frame {
                        kind,
                        test,
                        paren0: paren,
                        bracket0: bracket,
                        expect_variant: true,
                    });
                    buf.clear();
                }
                '}' => {
                    if let Some(fr) = frames.pop() {
                        match fr.kind {
                            FrameKind::Fn(i) => g.fns[i].body.1 = t.line,
                            FrameKind::Loop(start) => {
                                if let Some(fidx) = innermost_fn(&frames) {
                                    g.fns[fidx].loops.push((start, t.line));
                                }
                            }
                            _ => {}
                        }
                    }
                    buf.clear();
                }
                ';' => {
                    if all_mod(&frames) && !in_macro(&frames) {
                        let test =
                            frames.last().is_some_and(|f| f.test) || buf_has_cfg_test(toks, &buf);
                        let is_proc_macro =
                            buf.iter().any(|&b| toks[b].text.starts_with("proc_macro"));
                        if !is_proc_macro && !buf_has_ident(toks, &buf, "use") {
                            record_semi_item(g, fi, toks, &buf, test);
                        }
                    }
                    buf.clear();
                }
                _ => buf.push(k),
            }
        } else {
            buf.push(k);
        }
        k += 1;
    }
}

/// Classifies the block opened by a `{` from its header tokens, creating
/// the graph node for function/enum/match frames as a side effect.
fn classify_header(
    g: &mut Graph,
    fi: usize,
    toks: &[Tok],
    buf: &[usize],
    frames: &[Frame],
    open_line: usize,
    test: bool,
) -> FrameKind {
    let has = |w: &str| buf_has_ident(toks, buf, w);
    if buf_has_ident(toks, buf, "macro_rules") {
        return FrameKind::Macro;
    }
    if frames.iter().any(|f| f.kind == FrameKind::Macro) {
        return FrameKind::Block;
    }
    if has("fn") {
        let pos = buf
            .iter()
            .position(|&k| toks[k].is_ident("fn"))
            .expect("checked above");
        let name = buf[pos + 1..]
            .iter()
            .find(|&&k| toks[k].kind == TokKind::Ident)
            .map(|&k| toks[k].text.clone())
            .unwrap_or_default();
        let is_pub = is_pub_header(toks, buf);
        let impl_ty = frames.iter().rev().find_map(|f| match &f.kind {
            FrameKind::Impl(t) => t.clone(),
            _ => None,
        });
        g.fns.push(FnItem {
            name,
            file: fi,
            line: toks[buf[pos]].line,
            body: (open_line, open_line),
            is_pub,
            in_test: test,
            impl_ty,
            calls: Vec::new(),
            loops: Vec::new(),
            event_refs: Vec::new(),
        });
        return FrameKind::Fn(g.fns.len() - 1);
    }
    if has("impl") {
        return FrameKind::Impl(impl_target(toks, buf));
    }
    if has("trait") {
        return FrameKind::Trait;
    }
    if has("enum") {
        let pos = buf
            .iter()
            .position(|&k| toks[k].is_ident("enum"))
            .expect("checked above");
        let name = buf[pos + 1..]
            .iter()
            .find(|&&k| toks[k].kind == TokKind::Ident)
            .map(|&k| toks[k].text.clone())
            .unwrap_or_default();
        g.enums.push(EnumDef {
            name,
            file: fi,
            line: toks[buf[pos]].line,
            variants: Vec::new(),
        });
        return FrameKind::Enum(g.enums.len() - 1);
    }
    if has("struct") || has("union") {
        return FrameKind::Struct;
    }
    if has("mod") {
        return FrameKind::Mod;
    }
    if has("match") {
        g.matches.push(MatchExpr {
            file: fi,
            line: open_line,
            in_test: test,
            variants: BTreeSet::new(),
            wildcard: false,
        });
        return FrameKind::Match(g.matches.len() - 1);
    }
    if has("for") || has("while") || has("loop") {
        return FrameKind::Loop(open_line);
    }
    FrameKind::Block
}

/// `pub` with no `(restriction)` directly after it.
fn is_pub_header(toks: &[Tok], buf: &[usize]) -> bool {
    buf.iter().enumerate().any(|(i, &k)| {
        toks[k].is_ident("pub") && !buf.get(i + 1).is_some_and(|&k2| toks[k2].is_punct('('))
    })
}

/// Records a braced top-level item (`fn`/`struct`/`enum`/`trait`/`mod`/
/// `macro_rules`) into `pub_items` when it is public.
fn record_item(
    g: &mut Graph,
    fi: usize,
    toks: &[Tok],
    buf: &[usize],
    test: bool,
    kind: &FrameKind,
) {
    let (kw, name, line) = match kind {
        FrameKind::Fn(i) => ("fn", g.fns[*i].name.clone(), g.fns[*i].line),
        FrameKind::Enum(i) => ("enum", g.enums[*i].name.clone(), g.enums[*i].line),
        FrameKind::Macro => {
            // Public iff `#[macro_export]`-attributed.
            if !buf_has_ident(toks, buf, "macro_export") {
                return;
            }
            let pos = buf
                .iter()
                .position(|&k| toks[k].is_ident("macro_rules"))
                .expect("Macro frames always contain macro_rules");
            let name = buf[pos + 1..]
                .iter()
                .find(|&&k| toks[k].kind == TokKind::Ident)
                .map(|&k| toks[k].text.clone())
                .unwrap_or_default();
            ("macro_rules", name, toks[buf[pos]].line)
        }
        FrameKind::Struct | FrameKind::Trait | FrameKind::Mod => {
            let Some(pos) = buf.iter().position(|&k| {
                toks[k].is_ident("struct")
                    || toks[k].is_ident("union")
                    || toks[k].is_ident("trait")
                    || toks[k].is_ident("mod")
            }) else {
                return; // the crate root is a `Mod` frame with no header
            };
            let kw = if toks[buf[pos]].is_ident("trait") {
                "trait"
            } else if toks[buf[pos]].is_ident("mod") {
                "mod"
            } else {
                "struct"
            };
            let name = buf[pos + 1..]
                .iter()
                .find(|&&k| toks[k].kind == TokKind::Ident)
                .map(|&k| toks[k].text.clone())
                .unwrap_or_default();
            (kw, name, toks[buf[pos]].line)
        }
        _ => return,
    };
    let is_pub = match kind {
        FrameKind::Fn(i) => g.fns[*i].is_pub,
        FrameKind::Macro => true, // macro_export established above
        _ => is_pub_header(toks, buf),
    };
    if is_pub && !name.is_empty() {
        g.pub_items.push(PubItem {
            kind: kw.to_string(),
            name,
            file: fi,
            line,
            in_test: test,
        });
    }
}

/// Records a `;`-terminated top-level item (`struct Unit;`, `const`,
/// `static`, `type`, `mod decl;`).
fn record_semi_item(g: &mut Graph, fi: usize, toks: &[Tok], buf: &[usize], test: bool) {
    let Some(pos) = buf.iter().position(|&k| {
        let t = &toks[k];
        t.kind == TokKind::Ident && ITEM_KINDS.contains(&t.text.as_str()) && !t.is_ident("fn")
    }) else {
        return;
    };
    if !is_pub_header(toks, buf) {
        return;
    }
    let kw = toks[buf[pos]].text.clone();
    let name = buf[pos + 1..]
        .iter()
        .find(|&&k| toks[k].kind == TokKind::Ident)
        .map(|&k| toks[k].text.clone())
        .unwrap_or_default();
    if name.is_empty() {
        return;
    }
    g.pub_items.push(PubItem {
        kind: kw,
        name,
        file: fi,
        line: toks[buf[pos]].line,
        in_test: test,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn graph_of(files: &[(&str, &str)]) -> (Graph, Vec<ScannedFile>) {
        let scanned: Vec<ScannedFile> = files.iter().map(|(p, s)| scan(p, s)).collect();
        (Graph::build(&scanned), scanned)
    }

    #[test]
    fn items_and_bodies_are_extracted() {
        let src = "pub fn simulate_x() {\n    helper();\n}\n\nfn helper() {\n    let v = 1;\n}\n\npub struct S;\npub const K: u64 = 3;\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let (g, _) = graph_of(&[("crates/sim/src/a.rs", src)]);
        let names: Vec<&str> = g.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["simulate_x", "helper", "t"]);
        assert!(g.fns[0].is_pub && !g.fns[1].is_pub);
        assert!(g.fns[2].in_test);
        assert_eq!(g.fns[0].body, (1, 3));
        let items: Vec<(&str, &str)> = g
            .pub_items
            .iter()
            .map(|i| (i.kind.as_str(), i.name.as_str()))
            .collect();
        assert_eq!(
            items,
            [("fn", "simulate_x"), ("struct", "S"), ("const", "K")]
        );
    }

    #[test]
    fn call_edges_resolve_free_method_and_qualified() {
        let a = "pub fn simulate_x() {\n    free_helper();\n    obj.method_helper();\n    Ty::assoc_helper();\n    other::mod_helper();\n}\n";
        let b = "pub fn free_helper() {}\npub fn mod_helper() {}\npub struct Ty;\nimpl Ty {\n    pub fn assoc_helper() {}\n    pub fn method_helper(&self) {}\n}\npub struct Unrelated;\nimpl Unrelated {\n    pub fn free_helper(&self) {}\n}\n";
        let (g, _) = graph_of(&[("crates/sim/src/a.rs", a), ("crates/sim/src/b.rs", b)]);
        let entry = g.fns_named(|n| n == "simulate_x")[0];
        let reached = g.reach(&[entry]);
        let reached_names: Vec<&str> = reached.keys().map(|&i| g.fns[i].name.as_str()).collect();
        assert!(reached_names.contains(&"free_helper"));
        assert!(reached_names.contains(&"method_helper"));
        assert!(reached_names.contains(&"assoc_helper"));
        assert!(reached_names.contains(&"mod_helper"));
        // The free call must NOT edge to Unrelated::free_helper's method
        // twin — but the method twin is also never called as `.free_helper()`.
        let unrelated = g
            .fns
            .iter()
            .position(|f| f.name == "free_helper" && f.impl_ty.is_some())
            .expect("method twin exists");
        assert!(!reached.contains_key(&unrelated));
    }

    #[test]
    fn self_calls_resolve_to_the_impl_type() {
        let src = "pub struct T;\nimpl T {\n    pub fn tick(&mut self) {\n        Self::step();\n    }\n    fn step() {}\n}\n";
        let (g, _) = graph_of(&[("crates/online/src/a.rs", src)]);
        let entry = g.fns_named(|n| n == "tick")[0];
        let reached = g.reach(&[entry]);
        let step = g.fns.iter().position(|f| f.name == "step").expect("step");
        assert!(reached.contains_key(&step));
        assert_eq!(g.chain(&reached, step), "tick → step");
    }

    #[test]
    fn loops_are_attached_to_their_function() {
        let src = "fn f() {\n    for i in 0..3 {\n        g(i);\n    }\n    while cond {\n        h();\n    }\n}\n";
        let (g, _) = graph_of(&[("crates/sim/src/a.rs", src)]);
        assert_eq!(g.fns[0].loops, [(2, 4), (5, 7)]);
    }

    #[test]
    fn enum_variants_and_event_refs_are_collected() {
        let src = "pub enum SchedEvent {\n    Tick { at: i64 },\n    Idle(u32),\n    Done,\n}\nfn emit() {\n    let e = SchedEvent::Tick { at: 0 };\n    take(SchedEvent::Done);\n}\n";
        let (g, _) = graph_of(&[("crates/obs/src/e.rs", src)]);
        assert_eq!(g.enums.len(), 1);
        assert_eq!(g.enums[0].variants, ["Tick", "Idle", "Done"]);
        let emit = &g.fns[0];
        let vars: Vec<&str> = emit.event_refs.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(vars, ["Tick", "Done"]);
    }

    #[test]
    fn match_wildcards_and_coverage_are_tracked() {
        let src = "fn f(ev: &SchedEvent) {\n    match ev {\n        SchedEvent::Tick { .. } => a(),\n        _ => b(),\n    }\n    match ev {\n        SchedEvent::Tick { .. } => c(),\n        SchedEvent::Idle(n) => d(*n),\n    }\n}\n";
        let (g, _) = graph_of(&[("crates/obs/src/m.rs", src)]);
        assert_eq!(g.matches.len(), 2);
        assert!(g.matches[0].wildcard);
        assert!(!g.matches[1].wildcard);
        let v: Vec<&String> = g.matches[1].variants.iter().collect();
        assert_eq!(v, ["Idle", "Tick"]);
    }

    #[test]
    fn nested_tuple_wildcards_are_not_match_wildcards() {
        let src = "fn f(x: (u8, u8)) {\n    match x {\n        (_, 0) => a(),\n        (1, _) => b(),\n        SchedEvent::Nope => c(),\n    }\n}\n";
        let (g, _) = graph_of(&[("crates/obs/src/m.rs", src)]);
        assert!(!g.matches[0].wildcard);
    }

    #[test]
    fn macro_bodies_are_not_graphed() {
        let src = "#[macro_export]\nmacro_rules! make_fn {\n    ($name:ident) => {\n        pub fn $name() { inner_call(); }\n    };\n}\n";
        let (g, _) = graph_of(&[("shims/fake/src/lib.rs", src)]);
        assert!(g.fns.is_empty(), "{:?}", g.fns);
        assert_eq!(g.pub_items.len(), 1);
        assert_eq!(g.pub_items[0].kind, "macro_rules");
        assert_eq!(g.pub_items[0].name, "make_fn");
    }

    #[test]
    fn impl_targets_survive_generics_and_trait_impls() {
        let src = "pub struct Wide<T>(T);\nimpl<T: Clone> Wide<T> {\n    fn direct(&self) {}\n}\nimpl<T> Iterator for Wide<T> {\n    fn next(&mut self) -> Option<T> { None }\n}\nimpl<F: Fn() -> i64> From<F> for Wide<F> {\n    fn from(f: F) -> Self { Wide(f) }\n}\n";
        let (g, _) = graph_of(&[("crates/core/src/w.rs", src)]);
        for f in &g.fns {
            assert_eq!(f.impl_ty.as_deref(), Some("Wide"), "{f:?}");
        }
    }
}
