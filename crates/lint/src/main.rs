//! CLI entry point: `cargo run -p pfair-lint [-- --root <path>]`.
//!
//! Lints the workspace sources and exits nonzero if any finding remains
//! after suppressions. Output is one `file:line: [rule] message` per
//! finding, sorted, so CI logs diff cleanly.

use std::path::PathBuf;
use std::process::ExitCode;

use pfair_lint::{collect_workspace_files, lint_files};

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// the workspace.
fn find_workspace_root(start: PathBuf) -> PathBuf {
    let mut dir = start.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return start;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("pfair-lint: workspace invariant linter\n\nUSAGE: pfair-lint [--root <workspace-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pfair-lint: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        find_workspace_root(std::env::current_dir().expect("pfair-lint needs a working directory"))
    });

    let files = match collect_workspace_files(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!(
                "pfair-lint: cannot read workspace under {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let diags = lint_files(&files);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("pfair-lint: clean ({} files)", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("pfair-lint: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}
