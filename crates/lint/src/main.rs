//! CLI entry point: `cargo run -p pfair-lint [-- --root <path>] [--json]`.
//!
//! Lints the workspace sources, filters the findings through the ratchet
//! baseline (`lint-baseline.txt` at the workspace root, if present), and
//! exits nonzero if any finding is not baselined — or if a baseline
//! entry matches no finding, so the baseline can only shrink. Default
//! output is one `file:line: [rule] message` per finding, sorted, so CI
//! logs diff cleanly; `--json` emits all findings (baselined included)
//! as a JSON array with the stable `{file, line, rule, message,
//! suppression}` schema for the CI artifact.

use std::path::PathBuf;
use std::process::ExitCode;

use pfair_lint::{
    apply_baseline, collect_workspace_files, diagnostics_to_json, lint_files, parse_baseline,
    BaselineEntry,
};

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// the workspace.
fn find_workspace_root(start: PathBuf) -> PathBuf {
    let mut dir = start.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return start;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = true,
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--no-baseline" => no_baseline = true,
            "--help" | "-h" => {
                println!(
                    "pfair-lint: workspace invariant linter\n\n\
                     USAGE: pfair-lint [--root <workspace-root>] [--json]\n\
                            [--baseline <file>] [--no-baseline]\n\n\
                     --json         emit findings as a JSON array (stable schema:\n\
                     \x20              file, line, rule, message, suppression)\n\
                     --baseline     ratchet baseline file (default: <root>/lint-baseline.txt)\n\
                     --no-baseline  ignore the baseline; every finding fails the run"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pfair-lint: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        find_workspace_root(std::env::current_dir().expect("pfair-lint needs a working directory"))
    });

    let files = match collect_workspace_files(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!(
                "pfair-lint: cannot read workspace under {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let diags = lint_files(&files);

    let baseline: Vec<BaselineEntry> = if no_baseline {
        Vec::new()
    } else {
        let path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
        match std::fs::read_to_string(&path) {
            Ok(text) => match parse_baseline(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("pfair-lint: malformed baseline {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => Vec::new(), // no baseline file: everything is new
        }
    };
    let split = apply_baseline(&diags, &baseline);

    if json {
        print!("{}", diagnostics_to_json(&diags));
    } else {
        for d in &split.new {
            println!("{d}");
        }
    }
    for b in &split.stale {
        eprintln!(
            "pfair-lint: stale baseline entry (no matching finding — remove it): {}\t{}\t{}",
            b.rule, b.path, b.message
        );
    }
    if split.new.is_empty() && split.stale.is_empty() {
        if !json {
            println!(
                "pfair-lint: clean ({} files, {} baselined finding(s))",
                files.len(),
                split.baselined.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "pfair-lint: {} new finding(s), {} stale baseline entr(ies)",
            split.new.len(),
            split.stale.len()
        );
        ExitCode::FAILURE
    }
}
