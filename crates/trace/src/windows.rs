//! Pfair window diagrams (Fig. 1 style).
//!
//! One row per released subtask: the PF-window `[r, d)` is drawn as
//! `[===)` over a slot grid; if the subtask is eligible before its release
//! (early releasing / the IS-window), the lead-in is drawn with `<`.

use pfair_taskmodel::{TaskId, TaskSystem};

/// Renders the window diagram of one task over slots `[0, horizon)`.
#[must_use]
pub fn render_windows(sys: &TaskSystem, task: TaskId, horizon: i64) -> String {
    let mut out = String::new();
    let t = sys.task(task);
    out.push_str(&format!("{} (wt {})\n", t.name, t.weight));
    // Slot ruler.
    out.push_str("        ");
    for s in 0..horizon {
        out.push_str(&format!("{:<2}", s % 10));
    }
    out.push('\n');
    for s in sys.task_subtasks(task) {
        let mut row = vec![' '; (horizon * 2) as usize + 2];
        let put = |row: &mut Vec<char>, pos: i64, ch: char| {
            if pos >= 0 && (pos as usize) < row.len() {
                row[pos as usize] = ch;
            }
        };
        // Eligibility lead-in.
        let mut x = s.eligible * 2;
        while x < s.release * 2 {
            put(&mut row, x, '<');
            x += 1;
        }
        put(&mut row, s.release * 2, '[');
        let mut x = s.release * 2 + 1;
        while x < s.deadline * 2 {
            put(&mut row, x, '=');
            x += 1;
        }
        put(&mut row, s.deadline * 2, ')');
        let label = format!("  T_{:<4}", s.id.index);
        out.push_str(&label);
        out.extend(row);
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// Renders the window diagrams of every task in the system, concatenated.
#[must_use]
pub fn render_system_windows(sys: &TaskSystem, horizon: i64) -> String {
    let mut out = String::new();
    for task in sys.tasks() {
        out.push_str(&render_windows(sys, task.id, horizon));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_taskmodel::release::{structured, ReleaseSpec};

    #[test]
    fn fig1a_periodic_windows() {
        // Weight 3/4: windows [0,2), [1,3), [2,4).
        let sys = structured(&[ReleaseSpec::periodic("T", 3, 4)], 4).unwrap();
        let s = render_windows(&sys, TaskId(0), 8);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("wt 3/4"));
        assert_eq!(lines[2], "  T_1   [===)");
        assert_eq!(lines[3], "  T_2     [===)");
        assert_eq!(lines[4], "  T_3       [===)");
    }

    #[test]
    fn fig1b_is_window_shift() {
        // T_3 released one slot late: window [3, 5).
        let spec = ReleaseSpec {
            name: "T",
            e: 3,
            p: 4,
            delays: &[(3, 1)],
            drops: &[],
            early: 0,
        };
        let sys = structured(&[spec], 4).unwrap();
        let s = render_windows(&sys, TaskId(0), 8);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[4], "  T_3         [===)");
    }

    #[test]
    fn system_windows_concatenate() {
        let sys = pfair_taskmodel::release::periodic(&[(3, 4), (1, 2)], 4);
        let all = render_system_windows(&sys, 6);
        assert!(all.contains("wt 3/4"));
        assert!(all.contains("wt 1/2"));
        assert!(all.lines().count() > 8);
    }

    #[test]
    fn early_release_lead_in() {
        let spec = ReleaseSpec {
            name: "T",
            e: 1,
            p: 2,
            delays: &[],
            drops: &[],
            early: 1,
        };
        let sys = structured(&[spec], 4).unwrap();
        let s = render_windows(&sys, TaskId(0), 6);
        // T_2: r = 2, e = 1 ⇒ two '<' cells before '['.
        let line = s.lines().nth(3).unwrap();
        assert_eq!(line, "  T_2     <<[===)");
    }
}
