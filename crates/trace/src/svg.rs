//! SVG rendering of schedules — publication-style counterparts of the
//! ASCII Gantt charts, written by hand (no drawing dependencies).
//!
//! One horizontal band per processor; each quantum is a rectangle from
//! `S(T_i)` to `S(T_i) + c(T_i)` labelled `X_i`; slot boundaries are
//! vertical grid lines, so DVQ quanta visibly cross or stop short of
//! them. Deadline misses are outlined. The output embeds a small legend
//! with the task weights.

use core::fmt::Write as _;

use pfair_numeric::Rat;
use pfair_sim::Schedule;
use pfair_taskmodel::TaskSystem;

/// Options for [`render_svg`].
#[derive(Clone, Copy, Debug)]
pub struct SvgOptions {
    /// Pixels per quantum.
    pub px_per_slot: u32,
    /// Pixels per processor band.
    pub band_height: u32,
    /// Render slots `[0, horizon)`.
    pub horizon: i64,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            px_per_slot: 60,
            band_height: 34,
            horizon: 8,
        }
    }
}

/// Escapes XML-special characters in text content.
fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// A fixed qualitative palette (cycled by task id).
const PALETTE: [&str; 10] = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948", "#b07aa1", "#ff9da7",
    "#9c755f", "#bab0ac",
];

/// Renders the schedule as a standalone SVG document.
#[must_use]
pub fn render_svg(sys: &TaskSystem, sched: &Schedule, opts: &SvgOptions) -> String {
    let left = 48.0;
    let top = 24.0;
    let w = opts.horizon as f64 * f64::from(opts.px_per_slot);
    let h = f64::from(sched.m()) * f64::from(opts.band_height);
    let legend_h = 18.0;
    let total_w = left + w + 12.0;
    let total_h = top + h + 24.0 + legend_h;
    let x_of = |t: Rat| left + t.to_f64() * f64::from(opts.px_per_slot);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{total_w:.0}" height="{total_h:.0}" font-family="sans-serif" font-size="11">"##
    );
    let _ = write!(
        svg,
        r##"<rect x="0" y="0" width="{total_w:.0}" height="{total_h:.0}" fill="white"/>"##
    );

    // Slot grid and ruler.
    for t in 0..=opts.horizon {
        let x = x_of(Rat::int(t));
        let _ = write!(
            svg,
            r##"<line x1="{x:.1}" y1="{top}" x2="{x:.1}" y2="{:.1}" stroke="#ccc" stroke-width="1"/>"##,
            top + h
        );
        let _ = write!(
            svg,
            r##"<text x="{x:.1}" y="{:.1}" text-anchor="middle" fill="#444">{t}</text>"##,
            top - 8.0
        );
    }

    // Processor bands.
    for proc in 0..sched.m() {
        let y = top + f64::from(proc) * f64::from(opts.band_height);
        let _ = write!(
            svg,
            r##"<text x="4" y="{:.1}" fill="#444">CPU{proc}</text>"##,
            y + f64::from(opts.band_height) * 0.62
        );
        let _ = write!(
            svg,
            r##"<line x1="{left}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#eee"/>"##,
            y + f64::from(opts.band_height),
            left + w,
            y + f64::from(opts.band_height)
        );
    }

    // Quanta.
    for p in sched.placements() {
        if p.start >= Rat::int(opts.horizon) {
            continue;
        }
        let s = sys.subtask(p.st);
        let task = sys.task(s.id.task);
        let x = x_of(p.start);
        let x2 = x_of(p.completion().min(Rat::int(opts.horizon)));
        let y = top + f64::from(p.proc) * f64::from(opts.band_height) + 3.0;
        let bh = f64::from(opts.band_height) - 6.0;
        let color = PALETTE[s.id.task.idx() % PALETTE.len()];
        let missed = p.completion() > Rat::int(s.deadline);
        let stroke = if missed { "#c00" } else { "#333" };
        let sw = if missed { 2.0 } else { 0.5 };
        let _ = write!(
            svg,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{bh:.1}" fill="{color}" stroke="{stroke}" stroke-width="{sw}" rx="2"/>"##,
            (x2 - x).max(1.0)
        );
        let _ = write!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" text-anchor="middle" fill="white">{}_{}</text>"##,
            (x + x2) / 2.0,
            y + bh * 0.68,
            xml_escape(&task.name),
            s.id.index
        );
    }

    // Legend.
    let ly = top + h + 18.0;
    let mut lx = left;
    for task in sys.tasks() {
        let color = PALETTE[task.id.idx() % PALETTE.len()];
        let _ = write!(
            svg,
            r##"<rect x="{lx:.1}" y="{:.1}" width="10" height="10" fill="{color}"/>"##,
            ly - 9.0
        );
        let label = xml_escape(&format!("{} ({})", task.name, task.weight));
        let _ = write!(
            svg,
            r##"<text x="{:.1}" y="{ly:.1}" fill="#333">{label}</text>"##,
            lx + 14.0
        );
        lx += 14.0 + 8.0 + 7.0 * label.len() as f64;
    }

    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_sim::{simulate_dvq, simulate_sfq, FixedCosts, FullQuantum};
    use pfair_taskmodel::{release, TaskId};

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    #[test]
    fn produces_wellformed_svg() {
        let sys = fig2_system();
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let svg = render_svg(
            &sys,
            &sched,
            &SvgOptions {
                horizon: 6,
                ..SvgOptions::default()
            },
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // One rect per quantum (12) plus background and legend swatches.
        assert_eq!(svg.matches("<rect").count(), 1 + 12 + 6);
        // No unescaped raw text hazards in names used here.
        assert!(svg.contains(">D_1<"));
    }

    #[test]
    fn xml_special_names_are_escaped() {
        let mut b = pfair_taskmodel::TaskSystemBuilder::new();
        let t = b.add_named_task(pfair_taskmodel::Weight::new(1, 2), "a<b&c>");
        b.push(t, 1, 0, None).unwrap();
        let sys = b.build();
        let sched = simulate_sfq(&sys, 1, &Pd2, &mut FullQuantum);
        let svg = render_svg(&sys, &sched, &SvgOptions::default());
        assert!(svg.contains("a&lt;b&amp;c&gt;"));
        assert!(!svg.contains("a<b&c>"));
    }

    #[test]
    fn misses_are_outlined() {
        let sys = fig2_system();
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        let svg = render_svg(
            &sys,
            &sched,
            &SvgOptions {
                horizon: 6,
                ..SvgOptions::default()
            },
        );
        // Exactly one missed quantum (F_2) outlined in red.
        assert_eq!(svg.matches("stroke=\"#c00\"").count(), 1);
    }
}
