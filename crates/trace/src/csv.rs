//! CSV export — flat files for spreadsheet/plotting pipelines.
//!
//! Two exporters, both hand-rolled (the formats are trivial and
//! dependency-free):
//!
//! * [`schedule_to_csv`] — one row per quantum: subtask identity, window,
//!   placement, completion, tardiness;
//! * [`rows_to_csv`] — a generic helper turning labelled rational/number
//!   columns into CSV, used by the experiment examples.
//!
//! Rational values are emitted both exactly (`num/den`) and as decimal
//! approximations, so downstream tools can pick either.

use core::fmt::Write as _;

use pfair_numeric::Rat;
use pfair_sim::Schedule;
use pfair_taskmodel::TaskSystem;

/// Escapes one CSV field (quotes iff needed).
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One row per quantum: `task,name,index,release,deadline,eligible,proc,
/// start,start_f64,cost,completion,completion_f64,tardiness`.
#[must_use]
pub fn schedule_to_csv(sys: &TaskSystem, sched: &Schedule) -> String {
    let mut out = String::from(
        "task,name,index,release,deadline,eligible,proc,start,start_f64,cost,completion,completion_f64,tardiness\n",
    );
    for p in sched.placements() {
        let s = sys.subtask(p.st);
        let task = sys.task(s.id.task);
        let completion = p.completion();
        let tardiness = (completion - Rat::int(s.deadline)).max(Rat::ZERO);
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{:.6},{},{},{:.6},{}",
            s.id.task.0,
            field(&task.name),
            s.id.index,
            s.release,
            s.deadline,
            s.eligible,
            p.proc,
            p.start,
            p.start.to_f64(),
            p.cost,
            completion,
            completion.to_f64(),
            tardiness,
        );
    }
    out
}

/// Generic row export: `header` names the columns; each row's cells are
/// preformatted strings.
///
/// # Panics
/// Panics if any row's arity differs from the header's.
#[must_use]
pub fn rows_to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "row arity mismatch");
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_sim::{simulate_dvq, simulate_sfq, FixedCosts, FullQuantum};
    use pfair_taskmodel::{release, TaskId};

    #[test]
    fn schedule_csv_has_row_per_quantum() {
        let sys = release::periodic(&[(1, 2), (1, 2)], 6);
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let csv = schedule_to_csv(&sys, &sched);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + sys.num_subtasks());
        assert!(lines[0].starts_with("task,name,index"));
        // All tardiness cells are 0.
        for row in &lines[1..] {
            assert!(row.ends_with(",0"), "{row}");
        }
    }

    #[test]
    fn tardy_subtasks_report_exact_rational() {
        let sys = release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        );
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        let csv = schedule_to_csv(&sys, &sched);
        assert!(csv.lines().any(|l| l.ends_with(",3/4")));
    }

    #[test]
    fn field_escaping() {
        let csv = rows_to_csv(
            &["name", "value"],
            &[
                vec!["plain".into(), "1".into()],
                vec!["with,comma".into(), "with\"quote".into()],
            ],
        );
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let _ = rows_to_csv(&["a", "b"], &[vec!["1".into()]]);
    }
}
