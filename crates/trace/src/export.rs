//! Machine-readable trace bundles.
//!
//! A [`TraceBundle`] packages a task system, its schedule, and headline
//! statistics into one serde-serializable value; [`TraceBundle::to_json`]
//! emits it for downstream tooling (plotting, regression archives).

use pfair_numeric::Rat;
use pfair_sim::{QuantumModel, Schedule};
use pfair_taskmodel::TaskSystem;
use serde::{Deserialize, Serialize};

/// A self-contained export of one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceBundle {
    /// The simulated task system.
    pub system: TaskSystem,
    /// The resulting schedule.
    pub schedule: Schedule,
    /// Quantum model (duplicated from the schedule for easy filtering).
    pub model: QuantumModel,
    /// Maximum subtask tardiness.
    pub max_tardiness: Rat,
    /// Number of deadline misses.
    pub misses: usize,
}

/// Builds a [`TraceBundle`] from a run.
#[must_use]
pub fn trace_bundle(sys: &TaskSystem, sched: &Schedule) -> TraceBundle {
    let mut max_tardiness = Rat::ZERO;
    let mut misses = 0usize;
    for (st, s) in sys.iter_refs() {
        let t = (sched.completion(st) - Rat::int(s.deadline)).max(Rat::ZERO);
        if t.is_positive() {
            misses += 1;
            max_tardiness = max_tardiness.max(t);
        }
    }
    TraceBundle {
        system: sys.clone(),
        schedule: sched.clone(),
        model: sched.model(),
        max_tardiness,
        misses,
    }
}

impl TraceBundle {
    /// Serializes to pretty-printed JSON.
    ///
    /// # Panics
    /// Panics if serialization fails (all field types are
    /// infallibly serializable).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("TraceBundle serializes infallibly")
    }

    /// Parses a bundle back from JSON.
    ///
    /// # Errors
    /// Any `serde_json` parse error.
    pub fn from_json(s: &str) -> Result<TraceBundle, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_sim::{simulate_dvq, simulate_sfq, FixedCosts, FullQuantum};
    use pfair_taskmodel::{release, TaskId};

    #[test]
    fn round_trip_json() {
        let sys = release::periodic(&[(1, 2), (3, 4)], 8);
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let bundle = trace_bundle(&sys, &sched);
        assert_eq!(bundle.max_tardiness, Rat::ZERO);
        assert_eq!(bundle.misses, 0);
        let json = bundle.to_json();
        let back = TraceBundle::from_json(&json).unwrap();
        assert_eq!(back.system, bundle.system);
        assert_eq!(back.misses, 0);
        assert_eq!(back.schedule.placements().len(), sched.placements().len());
    }

    #[test]
    fn records_misses() {
        let sys = release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        );
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        let bundle = trace_bundle(&sys, &sched);
        assert_eq!(bundle.misses, 1);
        assert_eq!(bundle.max_tardiness, Rat::ONE - delta);
        assert_eq!(bundle.model, QuantumModel::Dvq);
        assert!(bundle.to_json().contains("\"misses\": 1"));
    }
}
