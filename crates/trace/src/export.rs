//! Machine-readable trace bundles.
//!
//! A [`TraceBundle`] packages a task system, its schedule, and headline
//! statistics into one serde-serializable value; [`TraceBundle::to_json`]
//! emits it for downstream tooling (plotting, regression archives).
//! [`events_to_jsonl`] is the streaming counterpart: it renders a captured
//! [`pfair_obs::SchedEvent`] stream as newline-delimited JSON, one event
//! per line (the format `pfairsim run --events <path>` writes).

use pfair_numeric::Rat;
use pfair_obs::{JsonlObserver, Observer, SchedEvent};
use pfair_sim::{QuantumModel, Schedule};
use pfair_taskmodel::TaskSystem;
use serde::{Deserialize, Serialize};

/// A self-contained export of one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceBundle {
    /// The simulated task system.
    pub system: TaskSystem,
    /// The resulting schedule.
    pub schedule: Schedule,
    /// Quantum model (duplicated from the schedule for easy filtering).
    pub model: QuantumModel,
    /// Maximum subtask tardiness.
    pub max_tardiness: Rat,
    /// Number of deadline misses.
    pub misses: usize,
}

/// Builds a [`TraceBundle`] from a run.
#[must_use]
pub fn trace_bundle(sys: &TaskSystem, sched: &Schedule) -> TraceBundle {
    let mut max_tardiness = Rat::ZERO;
    let mut misses = 0usize;
    for (st, s) in sys.iter_refs() {
        let t = (sched.completion(st) - Rat::int(s.deadline)).max(Rat::ZERO);
        if t.is_positive() {
            misses += 1;
            max_tardiness = max_tardiness.max(t);
        }
    }
    TraceBundle {
        system: sys.clone(),
        schedule: sched.clone(),
        model: sched.model(),
        max_tardiness,
        misses,
    }
}

impl TraceBundle {
    /// Serializes to pretty-printed JSON.
    ///
    /// # Panics
    /// Panics if serialization fails (all field types are
    /// infallibly serializable).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("TraceBundle serializes infallibly")
    }

    /// Parses a bundle back from JSON.
    ///
    /// # Errors
    /// Any `serde_json` parse error.
    pub fn from_json(s: &str) -> Result<TraceBundle, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Renders an event stream as newline-delimited JSON (one externally
/// tagged object per line, e.g. `{"Tick":{"at":[3,1]}}`), by replaying it
/// through a [`JsonlObserver`]. To export a live run, attach a
/// [`JsonlObserver`] to one of the simulators' `*_observed` entry points
/// instead:
///
/// ```
/// use pfair_core::Pd2;
/// use pfair_obs::JsonlObserver;
/// use pfair_sim::{simulate_sfq_observed, FullQuantum};
/// use pfair_taskmodel::release;
///
/// let sys = release::periodic(&[(1, 2)], 2);
/// let mut jsonl = JsonlObserver::new();
/// let _ = simulate_sfq_observed(&sys, 1, &Pd2, &mut FullQuantum, &mut jsonl);
/// assert!(jsonl.to_jsonl().starts_with("{\"Tick\":{\"at\":[0,1]}}\n"));
/// ```
#[must_use]
pub fn events_to_jsonl(events: &[SchedEvent]) -> String {
    let mut obs = JsonlObserver::new();
    for ev in events {
        obs.on_event(ev);
    }
    obs.to_jsonl()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_sim::{simulate_dvq, simulate_sfq, FixedCosts, FullQuantum};
    use pfair_taskmodel::{release, TaskId};

    #[test]
    fn round_trip_json() {
        let sys = release::periodic(&[(1, 2), (3, 4)], 8);
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let bundle = trace_bundle(&sys, &sched);
        assert_eq!(bundle.max_tardiness, Rat::ZERO);
        assert_eq!(bundle.misses, 0);
        let json = bundle.to_json();
        let back = TraceBundle::from_json(&json).unwrap();
        assert_eq!(back.system, bundle.system);
        assert_eq!(back.misses, 0);
        assert_eq!(back.schedule.placements().len(), sched.placements().len());
    }

    #[test]
    fn records_misses() {
        let sys = release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        );
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        let bundle = trace_bundle(&sys, &sched);
        assert_eq!(bundle.misses, 1);
        assert_eq!(bundle.max_tardiness, Rat::ONE - delta);
        assert_eq!(bundle.model, QuantumModel::Dvq);
        assert!(bundle.to_json().contains("\"misses\": 1"));
    }

    #[test]
    fn jsonl_matches_live_capture() {
        // Replaying a recorded event list must produce the same document a
        // live JsonlObserver would have written.
        let sys = release::periodic(&[(1, 2), (1, 3)], 6);
        let mut live = JsonlObserver::new();
        let _ = pfair_sim::simulate_sfq_observed(&sys, 1, &Pd2, &mut FullQuantum, &mut live);
        let recorded: Vec<SchedEvent> = {
            // Re-run, collecting the raw events this time.
            struct Collect(Vec<SchedEvent>);
            impl Observer for Collect {
                fn on_event(&mut self, ev: &SchedEvent) {
                    self.0.push(ev.clone());
                }
            }
            let mut c = Collect(Vec::new());
            let _ = pfair_sim::simulate_sfq_observed(&sys, 1, &Pd2, &mut FullQuantum, &mut c);
            c.0
        };
        assert!(!recorded.is_empty());
        assert_eq!(events_to_jsonl(&recorded), live.to_jsonl());
        // One JSON object per line, each externally tagged.
        for line in live.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }
}
