//! Schedule tracing: ASCII renderings of the paper's figures and
//! machine-readable export.
//!
//! * [`gantt`] — per-processor Gantt charts of a simulated schedule, with
//!   sub-slot resolution so DVQ's fractional quanta (e.g. a subtask
//!   starting at `2 − δ`) are visible, as in Figs. 2–4;
//! * [`windows`] — Pfair window diagrams of a task system (one row per
//!   subtask, `[≡≡≡)` spans), as in Fig. 1;
//! * [`export`] — JSON bundles (system + schedule + stats) and
//!   newline-delimited event streams for downstream tooling;
//! * [`svg`] — standalone SVG renderings of schedules (publication-style
//!   figure artifacts, no drawing dependencies);
//! * [`csv`] — flat-file export for spreadsheet/plotting pipelines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod export;
pub mod gantt;
pub mod svg;
pub mod windows;

pub use csv::{rows_to_csv, schedule_to_csv};
pub use export::{events_to_jsonl, trace_bundle, TraceBundle};
pub use gantt::{render_gantt, GanttOptions};
pub use svg::{render_svg, SvgOptions};
pub use windows::{render_system_windows, render_windows};
