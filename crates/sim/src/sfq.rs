//! The SFQ model: synchronized, fixed-size quanta.
//!
//! "Scheduling decisions are made at slot boundaries only" (§2): at each
//! integral time `t` the scheduler picks up to `M` ready subtasks by
//! priority; a scheduled subtask occupies its processor for the whole slot
//! `[t, t+1)` even if it completes early — the rest of the quantum is
//! wasted (non-work-conserving). Consequently the *schedule* is independent
//! of the cost model; only completion times (hence tardiness) and waste
//! depend on it.
//!
//! A subtask is ready at slot `t` iff it is eligible (`e(T_i) ≤ t`),
//! unscheduled, and its predecessor was scheduled in an earlier slot
//! (predecessors hold their processor to the boundary, so a successor can
//! run in the very next slot). At most one subtask per task is ready at a
//! time, so intra-task parallelism is structurally impossible.
//!
//! Two drivers are provided: [`simulate_sfq`] for plain priority orders
//! (EPDF/PD²/PF/PD) and [`simulate_sfq_pdb`] for the paper's PD^B
//! procedure, which needs the extra readiness fact "did the predecessor
//! run in slot `t − 1`" to form its `EB/PB/DB` partition.
//!
//! In the workspace's two-tier time representation (see the `dvq` module
//! docs and `crate::tdomain`), SFQ *is* the integer tier by construction:
//! every decision instant is an `i64` slot number, so there is no `QTime`
//! scaling and no bail-out — only placement and completion bookkeeping
//! ever touch rationals. The hot loop iterates a retained list of tasks
//! with unfinished chains rather than rescanning every cursor each slot.

use pfair_core::key::{EpdfKey, KeyCache, KeyDispatch, Pd2Key, PdKey, SubtaskKey};
use pfair_core::pdb;
use pfair_core::priority::{sort_by_priority, PriorityOrder};
use pfair_numeric::Rat;
use pfair_obs::{NoopObserver, Observer, ReadyCause, SchedEvent};
use pfair_taskmodel::{SubtaskRef, TaskSystem};

use crate::cost::{checked_cost, CostModel};
use crate::emit::{flush_ends, PendingEnd};
use crate::schedule::{Placement, QuantumModel, Schedule};

/// Which selection rule an SFQ run uses.
#[derive(Clone, Copy)]
pub enum SfqPolicy<'a> {
    /// Sort the ready set by a priority order; take the top `M`.
    Priority(&'a dyn PriorityOrder),
    /// The PD^B procedure of §3.1 (Table 1) with the given resolution of
    /// the table's two-way ties.
    PdB(pdb::PdbLinearization),
}

impl core::fmt::Debug for SfqPolicy<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SfqPolicy::Priority(p) => write!(f, "SfqPolicy::Priority({})", p.name()),
            SfqPolicy::PdB(lin) => write!(f, "SfqPolicy::PdB({lin:?})"),
        }
    }
}

/// Simulates `sys` on `m` processors under the SFQ model with a plain
/// priority order. Runs until every released subtask is scheduled.
#[must_use]
pub fn simulate_sfq(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
) -> Schedule {
    run_sfq(sys, m, SfqPolicy::Priority(order), cost)
}

/// [`simulate_sfq`] with a streaming [`Observer`] attached. With
/// [`NoopObserver`] this monomorphizes to exactly [`simulate_sfq`]'s code
/// (every emission site is gated by the compile-time `O::ENABLED`).
#[must_use]
pub fn simulate_sfq_observed<O: Observer>(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
    obs: &mut O,
) -> Schedule {
    run_sfq_impl(
        sys,
        m,
        SfqPolicy::Priority(order),
        cost,
        None,
        AffinityMode::ByDecision,
        obs,
    )
}

/// Simulates `sys` on `m` processors under the SFQ model with the PD^B
/// selection procedure.
#[must_use]
pub fn simulate_sfq_pdb(sys: &TaskSystem, m: u32, cost: &mut dyn CostModel) -> Schedule {
    run_sfq(
        sys,
        m,
        SfqPolicy::PdB(pdb::PdbLinearization::MaxBlocking),
        cost,
    )
}

/// [`simulate_sfq_pdb`] with a streaming [`Observer`] attached.
#[must_use]
pub fn simulate_sfq_pdb_observed<O: Observer>(
    sys: &TaskSystem,
    m: u32,
    cost: &mut dyn CostModel,
    obs: &mut O,
) -> Schedule {
    run_sfq_impl(
        sys,
        m,
        SfqPolicy::PdB(pdb::PdbLinearization::MaxBlocking),
        cost,
        None,
        AffinityMode::ByDecision,
        obs,
    )
}

/// [`simulate_sfq_pdb`] with an explicit resolution of Table 1's two-way
/// ties (the paper's worst case is [`pdb::PdbLinearization::MaxBlocking`]).
#[must_use]
pub fn simulate_sfq_pdb_with(
    sys: &TaskSystem,
    m: u32,
    cost: &mut dyn CostModel,
    lin: pdb::PdbLinearization,
) -> Schedule {
    run_sfq(sys, m, SfqPolicy::PdB(lin), cost)
}

/// Per-slot view of the PD^B partition (instrumentation for studying how
/// often the blocking machinery actually engages).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PdbSlotStats {
    /// The slot.
    pub t: i64,
    /// `|EB(t)|`: ready subtasks eligible exactly at `t`.
    pub eb: usize,
    /// `|PB(t)|` = `p`: ready subtasks that could be predecessor-blocked.
    pub pb: usize,
    /// `|DB(t)|`: ready subtasks that cannot be blocked.
    pub db: usize,
    /// How many subtasks the slot actually scheduled (≤ `M`).
    pub scheduled: usize,
}

/// [`simulate_sfq_pdb`] plus per-slot partition statistics.
#[must_use]
pub fn simulate_sfq_pdb_instrumented(
    sys: &TaskSystem,
    m: u32,
    cost: &mut dyn CostModel,
) -> (Schedule, Vec<PdbSlotStats>) {
    let mut stats = Vec::new();
    let sched = run_sfq_impl(
        sys,
        m,
        SfqPolicy::PdB(pdb::PdbLinearization::MaxBlocking),
        cost,
        Some(&mut stats),
        AffinityMode::ByDecision,
        &mut NoopObserver,
    );
    (sched, stats)
}

/// How picked subtasks are mapped onto processors within a slot.
///
/// Processor mapping never changes *which* subtasks run in a slot — only
/// where — so tardiness and validity are identical across modes; only
/// migration counts (`pfair-analysis::overhead`) differ.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AffinityMode {
    /// Decision order → ascending processor index (the paper's figures).
    #[default]
    ByDecision,
    /// Prefer the processor the task last ran on (reduces migrations, as
    /// real implementations do to preserve cache affinity).
    Sticky,
}

/// Shared SFQ driver.
#[must_use]
pub fn run_sfq(
    sys: &TaskSystem,
    m: u32,
    policy: SfqPolicy<'_>,
    cost: &mut dyn CostModel,
) -> Schedule {
    run_sfq_impl(
        sys,
        m,
        policy,
        cost,
        None,
        AffinityMode::ByDecision,
        &mut NoopObserver,
    )
}

/// [`run_sfq`] with a streaming [`Observer`] attached.
#[must_use]
pub fn run_sfq_observed<O: Observer>(
    sys: &TaskSystem,
    m: u32,
    policy: SfqPolicy<'_>,
    cost: &mut dyn CostModel,
    obs: &mut O,
) -> Schedule {
    run_sfq_impl(sys, m, policy, cost, None, AffinityMode::ByDecision, obs)
}

/// [`simulate_sfq`] with sticky processor affinity.
#[must_use]
pub fn simulate_sfq_affine(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
) -> Schedule {
    run_sfq_impl(
        sys,
        m,
        SfqPolicy::Priority(order),
        cost,
        None,
        AffinityMode::Sticky,
        &mut NoopObserver,
    )
}

/// [`simulate_sfq_affine`] with a streaming [`Observer`] attached.
#[must_use]
pub fn simulate_sfq_affine_observed<O: Observer>(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
    obs: &mut O,
) -> Schedule {
    run_sfq_impl(
        sys,
        m,
        SfqPolicy::Priority(order),
        cost,
        None,
        AffinityMode::Sticky,
        obs,
    )
}

/// Per-slot top-`M` selection for [`SfqPolicy::Priority`] runs.
///
/// The keyed variants map the slot's ready refs to precomputed keys once,
/// then select/sort by plain key comparisons; the comparator variant is the
/// fallback for orders with no registered key type. Selection is
/// select-then-sort either way: the priority order is strict (unique ids
/// break every tie), so the partial selection yields exactly the full
/// sort's prefix, and keyed and comparator runs pick identical slots.
enum SlotSelector<'a> {
    Comparator(&'a dyn PriorityOrder),
    Pd2(KeyCache<Pd2Key>, Vec<(Pd2Key, SubtaskRef)>),
    Epdf(KeyCache<EpdfKey>, Vec<(EpdfKey, SubtaskRef)>),
    Pd(KeyCache<PdKey>, Vec<(PdKey, SubtaskRef)>),
}

impl<'a> SlotSelector<'a> {
    fn new(sys: &TaskSystem, order: &'a dyn PriorityOrder) -> SlotSelector<'a> {
        match order.key_dispatch() {
            KeyDispatch::Pd2 => SlotSelector::Pd2(KeyCache::build(sys), Vec::new()),
            KeyDispatch::Epdf => SlotSelector::Epdf(KeyCache::build(sys), Vec::new()),
            KeyDispatch::Pd => SlotSelector::Pd(KeyCache::build(sys), Vec::new()),
            KeyDispatch::Comparator => SlotSelector::Comparator(order),
        }
    }

    /// Shrinks `ready` to the top `mcap` subtasks, sorted by priority.
    fn select(&mut self, sys: &TaskSystem, ready: &mut Vec<SubtaskRef>, mcap: usize) {
        match self {
            SlotSelector::Comparator(order) => {
                if ready.len() > mcap {
                    ready.select_nth_unstable_by(mcap - 1, |&a, &b| order.cmp(sys, a, b));
                    ready.truncate(mcap);
                }
                sort_by_priority(*order, sys, ready);
            }
            SlotSelector::Pd2(cache, scratch) => select_keyed(cache, scratch, ready, mcap),
            SlotSelector::Epdf(cache, scratch) => select_keyed(cache, scratch, ready, mcap),
            SlotSelector::Pd(cache, scratch) => select_keyed(cache, scratch, ready, mcap),
        }
    }
}

/// Keyed top-`mcap` selection: pair each ready ref with its cached key,
/// partial-select, sort, write the refs back.
fn select_keyed<K: SubtaskKey>(
    cache: &KeyCache<K>,
    scratch: &mut Vec<(K, SubtaskRef)>,
    ready: &mut Vec<SubtaskRef>,
    mcap: usize,
) {
    scratch.clear();
    scratch.extend(ready.iter().map(|&st| (cache.key(st), st)));
    if scratch.len() > mcap {
        scratch.select_nth_unstable_by(mcap - 1, |a, b| a.0.cmp(&b.0));
        scratch.truncate(mcap);
    }
    scratch.sort_unstable_by_key(|a| a.0);
    ready.clear();
    ready.extend(scratch.iter().map(|&(_, st)| st));
}

fn run_sfq_impl<O: Observer>(
    sys: &TaskSystem,
    m: u32,
    policy: SfqPolicy<'_>,
    cost: &mut dyn CostModel,
    mut pdb_stats: Option<&mut Vec<PdbSlotStats>>,
    affinity: AffinityMode,
    obs: &mut O,
) -> Schedule {
    assert!(m >= 1, "need at least one processor");
    let mut selector = match policy {
        SfqPolicy::Priority(order) => Some(SlotSelector::new(sys, order)),
        SfqPolicy::PdB(_) => None,
    };
    let total = sys.num_subtasks();
    let mut placements = Vec::with_capacity(total);
    // Slot in which each subtask was scheduled (for readiness / PD^B).
    let mut slot_of: Vec<Option<i64>> = vec![None; total];
    // Per task: next unscheduled subtask (absolute ref), end of span.
    let mut cursor: Vec<(u32, u32)> = (0..sys.num_tasks())
        .map(|k| sys.task_span(pfair_taskmodel::TaskId(k as u32)))
        .collect();
    // Tasks whose chains still have unscheduled subtasks, ascending; a
    // task leaves the list for good once its cursor reaches its span end,
    // so long-finished tasks stop costing the per-slot gather anything.
    let mut active: Vec<u32> = (0..sys.num_tasks() as u32)
        .filter(|&k| {
            let (cur, hi) = cursor[k as usize];
            cur < hi
        })
        .collect();
    let mut placed = 0usize;
    let mut t = 0i64;
    let mut ready: Vec<SubtaskRef> = Vec::with_capacity(sys.num_tasks());
    // Per task: last processor used (for sticky affinity).
    let mut last_proc: Vec<Option<u32>> = vec![None; sys.num_tasks()];
    // Observability state: quanta whose ends are still unannounced, which
    // subtasks already got a `Ready`, and this slot's fresh ready set. The
    // first gather that sees a subtask runs at exactly its ready slot (the
    // driver never jumps past a readiness time), so `Ready.at` is the slot.
    let mut pending_ends: Vec<PendingEnd> = Vec::new();
    let mut ready_emitted: Vec<bool> = if O::ENABLED {
        vec![false; total]
    } else {
        Vec::new()
    };
    let mut fresh_ready: Vec<(SubtaskRef, i64, ReadyCause)> = Vec::new();

    while placed < total {
        // All quanta from earlier slots completed at or before `t`:
        // announce them before this slot emits anything.
        if O::ENABLED {
            flush_ends(sys, &mut pending_ends, obs);
            fresh_ready.clear();
        }
        // Gather the (≤ one per task) ready subtasks, dropping exhausted
        // tasks from the active list as we go.
        ready.clear();
        let mut next_interesting = i64::MAX;
        active.retain(|&k| {
            let (cur, hi) = cursor[k as usize];
            if cur >= hi {
                return false;
            }
            let st = SubtaskRef(cur);
            let s = sys.subtask(st);
            let pred_done_at = match s.pred {
                None => i64::MIN,
                Some(p) => slot_of[p.idx()].expect("cursor implies pred scheduled") + 1,
            };
            let ready_at = s.eligible.max(pred_done_at);
            if ready_at <= t {
                ready.push(st);
                if O::ENABLED && !ready_emitted[st.idx()] {
                    ready_emitted[st.idx()] = true;
                    let cause = if pred_done_at > s.eligible {
                        ReadyCause::Predecessor
                    } else {
                        ReadyCause::Eligibility
                    };
                    fresh_ready.push((st, ready_at, cause));
                }
            } else {
                next_interesting = next_interesting.min(ready_at);
            }
            true
        });

        if ready.is_empty() {
            // With nothing ready, the driver can only jump forward to the
            // next readiness time. If none exists (or it does not advance),
            // `continue` would spin forever with unscheduled subtasks left
            // — a driver bug that a debug-only assert would let a release
            // build loop on silently. Fail hard instead.
            assert!(
                next_interesting < i64::MAX,
                "SFQ driver stuck at slot {t}: no subtask is ready, none becomes \
                 ready later, yet only {placed}/{total} subtasks are placed \
                 (lost readiness: broken predecessor chain or eligible time?)"
            );
            assert!(
                next_interesting > t,
                "SFQ driver stuck at slot {t}: next readiness time \
                 {next_interesting} does not advance ({placed}/{total} placed)"
            );
            t = next_interesting;
            continue;
        }

        if O::ENABLED {
            obs.on_event(&SchedEvent::Tick { at: Rat::int(t) });
            for &(st, ready_at, cause) in &fresh_ready {
                obs.on_event(&SchedEvent::Ready {
                    id: sys.subtask(st).id,
                    at: Rat::int(ready_at),
                    cause,
                });
            }
        }

        let pdb_holder: Vec<SubtaskRef>;
        let picked: &[SubtaskRef] = match policy {
            SfqPolicy::Priority(_) => {
                // Only the top M matter; a partial selection beats a full
                // sort once the ready set outgrows the machine (and cached
                // keys beat comparator calls; see `SlotSelector`).
                let sel = selector.as_mut().expect("Priority policy has a selector");
                sel.select(sys, &mut ready, m as usize);
                &ready
            }
            SfqPolicy::PdB(lin) => {
                let readiness: Vec<pdb::Ready> = ready
                    .iter()
                    .map(|&st| pdb::Ready {
                        st,
                        pred_holds_until_t: sys
                            .subtask(st)
                            .pred
                            .is_some_and(|p| slot_of[p.idx()] == Some(t - 1)),
                    })
                    .collect();
                let part = pdb::classify(sys, t, &readiness);
                let picked = pdb::select_slot_with(sys, m as usize, &part, lin);
                if let Some(stats) = pdb_stats.as_deref_mut() {
                    stats.push(PdbSlotStats {
                        t,
                        eb: part.eb.len(),
                        pb: part.pb.len(),
                        db: part.db.len(),
                        scheduled: picked.len(),
                    });
                }
                pdb_holder = picked;
                &pdb_holder
            }
        };

        let procs = assign_processors(sys, picked, m, affinity, &mut last_proc);
        for (&st, &proc) in picked.iter().zip(&procs) {
            let c = checked_cost(cost.cost(sys, st), st);
            placements.push(Placement {
                st,
                proc,
                start: Rat::int(t),
                cost: c,
                holds_until: Rat::int(t + 1),
            });
            slot_of[st.idx()] = Some(t);
            let s = sys.subtask(st);
            let task = s.id.task;
            if O::ENABLED {
                obs.on_event(&SchedEvent::QuantumStart {
                    id: s.id,
                    proc,
                    start: Rat::int(t),
                    cost: c,
                    holds_until: Rat::int(t + 1),
                    deadline: s.deadline,
                    bbit: s.bbit,
                    group_deadline: s.group_deadline,
                });
                pending_ends.push((Rat::int(t) + c, proc, st, Rat::ONE - c));
            }
            last_proc[task.idx()] = Some(proc);
            cursor[task.idx()].0 += 1;
            placed += 1;
        }
        if O::ENABLED && picked.len() < m as usize {
            obs.on_event(&SchedEvent::Idle {
                at: Rat::int(t),
                procs: m - picked.len() as u32,
            });
        }
        t += 1;
    }

    if O::ENABLED {
        flush_ends(sys, &mut pending_ends, obs);
    }

    Schedule::new(sys, QuantumModel::Sfq, m, placements)
}

/// Maps this slot's picked subtasks onto processors per the affinity mode.
fn assign_processors(
    sys: &TaskSystem,
    picked: &[SubtaskRef],
    m: u32,
    affinity: AffinityMode,
    last_proc: &mut [Option<u32>],
) -> Vec<u32> {
    match affinity {
        AffinityMode::ByDecision => (0..picked.len() as u32).collect(),
        AffinityMode::Sticky => {
            let mut taken = vec![false; m as usize];
            let mut assigned: Vec<Option<u32>> = vec![None; picked.len()];
            // First pass: grant preferences that are still free.
            for (k, &st) in picked.iter().enumerate() {
                let task = sys.subtask(st).id.task;
                if let Some(p) = last_proc[task.idx()] {
                    if !taken[p as usize] {
                        taken[p as usize] = true;
                        assigned[k] = Some(p);
                    }
                }
            }
            // Second pass: fill the rest with the lowest free processors.
            let mut next_free = 0u32;
            for slot in assigned.iter_mut() {
                if slot.is_none() {
                    while taken[next_free as usize] {
                        next_free += 1;
                    }
                    taken[next_free as usize] = true;
                    *slot = Some(next_free);
                }
            }
            assigned.into_iter().map(|a| a.expect("assigned")).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::{Epdf, Pd2};
    use pfair_taskmodel::{release, SubtaskId, TaskId};

    use crate::cost::FullQuantum;

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    fn slot(sys: &TaskSystem, sched: &Schedule, task: u32, index: u64) -> i64 {
        let st = sys
            .find(SubtaskId {
                task: TaskId(task),
                index,
            })
            .unwrap();
        sched.start(st).floor()
    }

    #[test]
    fn fig2a_sfq_pd2_schedule() {
        // Fig. 2(a): the PD² SFQ schedule of the paper's running example.
        let sys = fig2_system();
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        // D1,E1 in slot 0; F1,A1 in slot 1; D2,E2 in slot 2; F2,B1 in
        // slot 3; D3,E3 in slot 4; F3,C1 in slot 5.
        assert_eq!(slot(&sys, &sched, 3, 1), 0); // D1
        assert_eq!(slot(&sys, &sched, 4, 1), 0); // E1
        assert_eq!(slot(&sys, &sched, 5, 1), 1); // F1
        assert_eq!(slot(&sys, &sched, 0, 1), 1); // A1
        assert_eq!(slot(&sys, &sched, 3, 2), 2); // D2
        assert_eq!(slot(&sys, &sched, 4, 2), 2); // E2
        assert_eq!(slot(&sys, &sched, 5, 2), 3); // F2
        assert_eq!(slot(&sys, &sched, 1, 1), 3); // B1
        assert_eq!(slot(&sys, &sched, 3, 3), 4); // D3
        assert_eq!(slot(&sys, &sched, 4, 3), 4); // E3
        assert_eq!(slot(&sys, &sched, 5, 3), 5); // F3
        assert_eq!(slot(&sys, &sched, 2, 1), 5); // C1
                                                 // Everything meets its deadline (PD² optimal under SFQ).
        for (st, s) in sys.iter_refs() {
            assert!(sched.completion(st) <= Rat::int(s.deadline));
        }
    }

    #[test]
    fn fig2c_sfq_pdb_schedule() {
        // Fig. 2(c): PD^B postpones the DVQ allocations of Fig. 2(b) to
        // slot boundaries: B1 and C1 run in slot 2 (blocking D2, E2), so
        // D2, E2 run in slot 3 and F2 in slot 4 — F2 misses its deadline
        // (4) by exactly one quantum.
        let sys = fig2_system();
        let sched = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
        assert_eq!(slot(&sys, &sched, 3, 1), 0); // D1
        assert_eq!(slot(&sys, &sched, 4, 1), 0); // E1
        assert_eq!(slot(&sys, &sched, 5, 1), 1); // F1
        assert_eq!(slot(&sys, &sched, 0, 1), 1); // A1
        assert_eq!(slot(&sys, &sched, 1, 1), 2); // B1 — eligibility-blocks D2
        assert_eq!(slot(&sys, &sched, 2, 1), 2); // C1 — eligibility-blocks E2
        assert_eq!(slot(&sys, &sched, 3, 2), 3); // D2 (deadline 4: met)
        assert_eq!(slot(&sys, &sched, 4, 2), 3); // E2 (deadline 4: met)
        let f2 = sys
            .find(SubtaskId {
                task: TaskId(5),
                index: 2,
            })
            .unwrap();
        // F2: deadline 4, completes at 5 ⇒ tardiness exactly one quantum.
        assert_eq!(sched.completion(f2), Rat::int(5));
        assert_eq!(sys.subtask(f2).deadline, 4);
    }

    #[test]
    fn epdf_differs_from_pd2_only_in_tiebreaks() {
        // On this simple set EPDF (deadline + id) happens to produce the
        // same slot-0 picks as PD²; sanity-check the driver under both.
        let sys = fig2_system();
        let a = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let b = simulate_sfq(&sys, 2, &Epdf, &mut FullQuantum);
        assert_eq!(a.placements().len(), b.placements().len());
    }

    #[test]
    fn idle_slots_are_skipped() {
        // One light task: subtasks at r = 0 and r = 6; the driver must
        // jump over the empty slots rather than spin.
        let sys = release::periodic(&[(1, 6)], 12);
        let sched = simulate_sfq(&sys, 1, &Pd2, &mut FullQuantum);
        let starts: Vec<i64> = sched.placements().iter().map(|p| p.start.floor()).collect();
        assert_eq!(starts, vec![0, 6]);
    }

    #[test]
    fn schedule_independent_of_cost_model() {
        let sys = fig2_system();
        let full = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let mut cheap = crate::cost::ScaledCost(Rat::new(1, 3));
        let scaled = simulate_sfq(&sys, 2, &Pd2, &mut cheap);
        for (a, b) in full.placements().iter().zip(scaled.placements()) {
            assert_eq!(a.st, b.st);
            assert_eq!(a.start, b.start);
            assert_eq!(a.holds_until, b.holds_until);
        }
        // But waste differs.
        assert_eq!(full.placements()[0].waste(), Rat::ZERO);
        assert_eq!(scaled.placements()[0].waste(), Rat::new(2, 3));
    }

    #[test]
    fn pdb_instrumentation_reports_partitions() {
        let sys = fig2_system();
        let (sched, stats) = simulate_sfq_pdb_instrumented(&sys, 2, &mut FullQuantum);
        let plain = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
        for (st, _) in sys.iter_refs() {
            assert_eq!(sched.start(st), plain.start(st));
        }
        // Slot 0: all first subtasks have e = 0 = t ⇒ EB only.
        let s0 = stats.iter().find(|s| s.t == 0).unwrap();
        assert_eq!((s0.eb, s0.pb, s0.db), (6, 0, 0));
        assert_eq!(s0.scheduled, 2);
        // Slot 2: the eligibility-blocking slot — D2/E2/F2 in EB, B1/C1 in
        // DB.
        let s2 = stats.iter().find(|s| s.t == 2).unwrap();
        assert_eq!((s2.eb, s2.pb, s2.db), (3, 0, 2));
        // Slot 5: F3's predecessor F2 ran in slot 4 ⇒ PB engages.
        let s5 = stats.iter().find(|s| s.t == 5).unwrap();
        assert_eq!(s5.pb, 1);
        // Every slot schedules at most M.
        assert!(stats.iter().all(|s| s.scheduled <= 2));
    }

    use crate::sfq::simulate_sfq_pdb_instrumented;

    #[test]
    fn partial_selection_matches_full_sort() {
        // Many more ready tasks than processors: the select-then-sort fast
        // path must pick exactly the full sort's prefix every slot.
        let weights: Vec<(i64, i64)> = (0..24).map(|k| (1, 3 + (k % 5))).collect();
        let sys = release::periodic(&weights, 30);
        let fast = simulate_sfq(&sys, 3, &Pd2, &mut FullQuantum);
        // Reference: recompute each slot's expected set by full sort.
        for t in 0..fast.makespan().ceil() {
            let mut in_slot: Vec<_> = fast
                .placements()
                .iter()
                .filter(|p| p.start == Rat::int(t))
                .map(|p| p.st)
                .collect();
            in_slot.sort_by(|&a, &b| Pd2.cmp(&sys, a, b));
            // No subtask outside the slot may outrank the slot's worst
            // while being ready at t (ready ⇔ eligible and pred done).
            if let Some(&worst) = in_slot.last() {
                for (st, s) in sys.iter_refs() {
                    let ready = s.eligible <= t
                        && fast.start(st) > Rat::int(t) // unscheduled at t
                        && s
                            .pred
                            .is_none_or(|p| fast.start(p) < Rat::int(t));
                    if ready && in_slot.len() == 3 {
                        assert!(
                            Pd2.cmp(&sys, worst, st) == std::cmp::Ordering::Less,
                            "slot {t}: {:?} should have preempted {:?}",
                            s.id,
                            sys.subtask(worst).id
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sticky_affinity_same_slots_fewer_switches() {
        // Enough contention that round-robin decision order would bounce
        // tasks across processors.
        let sys = release::periodic(&[(1, 2), (1, 2), (1, 2), (1, 2), (1, 2), (1, 2)], 24);
        let plain = simulate_sfq(&sys, 3, &Pd2, &mut FullQuantum);
        let sticky = crate::sfq::simulate_sfq_affine(&sys, 3, &Pd2, &mut FullQuantum);
        // Identical slot assignment…
        for (st, _) in sys.iter_refs() {
            assert_eq!(plain.start(st), sticky.start(st));
        }
        // …but sticky keeps each task on one processor here: within every
        // task, all placements share a processor.
        for task in sys.tasks() {
            let procs: std::collections::HashSet<u32> = sys
                .task_subtask_refs(task.id)
                .map(|st| sticky.placement(st).proc)
                .collect();
            assert_eq!(procs.len(), 1, "task {:?} migrated under sticky", task.id);
        }
    }

    #[test]
    fn respects_processor_limit() {
        let sys = release::periodic(&[(1, 1), (1, 1), (1, 1)], 4);
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        for t in 0..8 {
            assert!(sched.executing_in_slot(t).count() <= 2);
        }
    }
}
