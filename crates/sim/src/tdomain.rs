//! Time domains: the two-tier representation of event times.
//!
//! The event-driven simulators ([`crate::dvq`], [`crate::staggered`]) are
//! written once, generic over a [`TimeDomain`] — the arithmetic their
//! event heaps and completion sums run in:
//!
//! * [`ExactTimes`] — times are exact [`Rat`]s; every operation is
//!   infallible. The reference tier, always correct.
//! * [`TickTimes`] — times are [`QTime`] tick counts at a per-run
//!   [`QScale`] (the lcm of the cost model's denominators, from
//!   [`CostModel::denominator_hint`](crate::cost::CostModel::denominator_hint)).
//!   Heap comparisons become single `i64` compares — the DVQ hot path's
//!   dominant cost under `Rat` — and every fallible conversion returns
//!   `Option` so the loop can **bail out** to [`ExactTimes`] mid-run.
//!
//! The bail-out contract is what keeps the fast path honest: a loop must
//! attempt every fallible conversion for a dispatch *before* any of that
//! dispatch's side effects (observer emissions, placements, heap pushes),
//! so that on `None` it can convert its whole state to exact rationals via
//! [`TimeDomain::to_rat`] — which never loses information, a tick count
//! *is* a rational — and resume at the same instant without re-running
//! anything. Costs already drawn from a stochastic model are carried over
//! verbatim, so RNG streams and observer streams are identical down both
//! tiers; the keyed-equivalence tests diff the resulting schedules
//! placement-for-placement.

use pfair_numeric::{QScale, QTime, Rat, Time};
use pfair_taskmodel::TaskSystem;

/// The arithmetic of one simulation run's event times. See the module docs
/// for the two implementations and the bail-out contract.
pub(crate) trait TimeDomain {
    /// An event time: totally ordered, cheap to copy and compare.
    type T: Copy + Ord + core::fmt::Debug;

    /// An event-heap entry: a time paired with a 64-bit payload code,
    /// ordered by time, then by code. The tick tier packs both into a
    /// single `u128`, so a heap sift step is one wide-integer compare
    /// instead of a tuple-then-enum cascade; the exact tier keeps the
    /// tuple. The simulators encode their event enums into the code such
    /// that code order equals the enum's derived order.
    type EvKey: Copy + Ord + core::fmt::Debug;

    /// Packs `(t, code)` into a heap entry.
    fn ev_key(&self, t: Self::T, code: u64) -> Self::EvKey;

    /// Recovers `(t, code)` from a heap entry.
    fn ev_split(&self, k: Self::EvKey) -> (Self::T, u64);

    /// The integral time `n` (quanta); `None` if unrepresentable.
    fn int(&self, n: i64) -> Option<Self::T>;

    /// An arbitrary rational instant; `None` if unrepresentable. Used to
    /// re-enter a domain at a bail-out's resume point.
    #[allow(clippy::wrong_self_convention)] // mirrors `QScale::from_rat`
    fn from_rat(&self, t: Rat) -> Option<Self::T>;

    /// `t + c` for a cost `c ∈ (0, 1]`; `None` if the cost is off the
    /// domain's grid or the sum overflows.
    fn add_cost(&self, t: Self::T, c: Rat) -> Option<Self::T>;

    /// `t + 1` (one quantum); `None` on overflow.
    fn add_one(&self, t: Self::T) -> Option<Self::T>;

    /// The exact rational value of `t`. Total: both domains represent
    /// rationals exactly, so nothing is ever lost leaving the fast tier.
    fn to_rat(&self, t: Self::T) -> Rat;
}

/// Exact rational times — the infallible reference tier.
pub(crate) struct ExactTimes;

impl TimeDomain for ExactTimes {
    type T = Time;
    type EvKey = (Time, u64);

    fn ev_key(&self, t: Time, code: u64) -> (Time, u64) {
        (t, code)
    }

    fn ev_split(&self, k: (Time, u64)) -> (Time, u64) {
        k
    }

    fn int(&self, n: i64) -> Option<Time> {
        Some(Rat::int(n))
    }

    fn from_rat(&self, t: Rat) -> Option<Time> {
        Some(t)
    }

    fn add_cost(&self, t: Time, c: Rat) -> Option<Time> {
        Some(t + c)
    }

    fn add_one(&self, t: Time) -> Option<Time> {
        Some(t + Rat::ONE)
    }

    fn to_rat(&self, t: Time) -> Rat {
        t
    }
}

/// Fixed-point tick times at a per-run scale — the fast tier.
pub(crate) struct TickTimes {
    pub scale: QScale,
}

/// Order-preserving lift of an `i64` into `u64` (flip the sign bit).
const SIGN: u64 = 1 << 63;

impl TimeDomain for TickTimes {
    type T = QTime;
    type EvKey = u128;

    fn ev_key(&self, t: QTime, code: u64) -> u128 {
        (u128::from((t.ticks() as u64) ^ SIGN) << 64) | u128::from(code)
    }

    fn ev_split(&self, k: u128) -> (QTime, u64) {
        let ticks = (((k >> 64) as u64) ^ SIGN) as i64;
        (QTime::from_ticks(ticks), k as u64)
    }

    fn int(&self, n: i64) -> Option<QTime> {
        self.scale.int(n)
    }

    fn from_rat(&self, t: Rat) -> Option<QTime> {
        self.scale.from_rat(t)
    }

    fn add_cost(&self, t: QTime, c: Rat) -> Option<QTime> {
        t.checked_add(self.scale.from_rat(c)?)
    }

    fn add_one(&self, t: QTime) -> Option<QTime> {
        t.checked_add(self.scale.int(1)?)
    }

    fn to_rat(&self, t: QTime) -> Rat {
        self.scale.to_rat(t)
    }
}

/// Picks the tick scale for a run over `sys`-like event times, or `None`
/// to stay exact: requires a denominator hint and headroom for every time
/// the run can produce. `max_int` must bound every integral instant the
/// caller will convert (max eligibility plus one quantum per dispatch plus
/// slack); with that guarantee, in-run bails can only come from costs off
/// the hinted grid, never from overflow.
/// An upper bound on every integral instant an event-driven run over `sys`
/// can produce, or `None` on overflow (which simply keeps the run exact).
/// Each dispatch pushes a completion (or next boundary) `≤ now + 1` and an
/// activation `≤ max(eligible, now + 1)`, and idle boundary spins never
/// outlast the latest eligibility, so by induction every event time is at
/// most `max |eligible| + num_subtasks + 2`.
pub(crate) fn event_span(sys: &TaskSystem) -> Option<i64> {
    let max_e = sys
        .iter_refs()
        .map(|(_, s)| s.eligible.unsigned_abs())
        .max()
        .unwrap_or(0);
    i64::try_from(max_e)
        .ok()?
        .checked_add(i64::try_from(sys.num_subtasks()).ok()?)?
        .checked_add(2)
}

pub(crate) fn tick_scale(hint: Option<i64>, max_int: i64) -> Option<QScale> {
    let den = hint?;
    if den <= 0 {
        return None;
    }
    let scale = QScale::new(den);
    // The whole run must fit i64 ticks — otherwise start exact.
    scale.int(max_int)?;
    Some(scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_domain_is_infallible_identity() {
        let d = ExactTimes;
        let t = d.int(3).expect("exact int");
        assert_eq!(d.to_rat(t), Rat::int(3));
        let c = Rat::new(7, 8);
        assert_eq!(
            d.add_cost(t, c).expect("exact add"),
            Rat::int(3) + Rat::new(7, 8)
        );
        assert_eq!(d.add_one(t).expect("exact add_one"), Rat::int(4));
        assert_eq!(d.from_rat(c).expect("exact from_rat"), c);
    }

    #[test]
    fn tick_domain_agrees_with_exact_on_grid() {
        let d = TickTimes {
            scale: QScale::new(24),
        };
        let t = d.int(5).expect("5 quanta in 24ths");
        let stepped = d.add_cost(t, Rat::new(7, 8)).expect("7/8 on the grid");
        assert_eq!(d.to_rat(stepped), Rat::int(5) + Rat::new(7, 8));
        assert_eq!(
            d.add_one(t).map(|x| d.to_rat(x)),
            Some(Rat::int(6)),
            "add_one is one quantum"
        );
        // Off-grid cost: refuse, don't round.
        assert_eq!(d.add_cost(t, Rat::new(1, 7)), None);
    }

    #[test]
    fn tick_scale_requires_hint_and_headroom() {
        assert_eq!(tick_scale(None, 100), None);
        assert_eq!(tick_scale(Some(0), 100), None);
        let s = tick_scale(Some(720_720), 1_000_000).expect("plenty of headroom");
        assert_eq!(s.ticks_per_quantum(), 720_720);
        // A span too wide for i64 ticks keeps the run exact.
        assert_eq!(tick_scale(Some(720_720), i64::MAX / 2), None);
    }
}
