//! The DVQ model: desynchronized, variable-sized quanta (§3).
//!
//! The DVQ model is the work-conserving relaxation of SFQ: "if a task
//! yields before executing for a full quantum, then a new quantum begins on
//! the associated processor immediately". Scheduling decisions therefore
//! happen at arbitrary rational times, independently per processor, and the
//! paper's two priority inversions arise naturally:
//!
//! * a processor freeing at `t − δ` is handed to a lower-priority subtask
//!   because the higher-priority one only becomes eligible at `t`
//!   (*eligibility blocking*);
//! * a subtask whose predecessor runs up to `t` watches an early-freed
//!   processor go to lower-priority work, and at `t` loses its
//!   predecessor's processor to a newly-eligible subtask
//!   (*predecessor blocking*).
//!
//! # Mechanics
//!
//! Event-driven simulation over exact rational times:
//!
//! * `Activate(st)` events fire when a subtask becomes *ready* — at
//!   `max(e(T_i), completion of predecessor)`;
//! * `ProcFree(k)` events fire when a quantum completes.
//!
//! All events at the same instant are drained before any assignment; then
//! free processors (ascending index) are matched with ready subtasks in
//! priority order. A subtask scheduled at time `τ` with actual cost `c`
//! completes at `τ + c` and its processor is immediately reusable — no
//! holds, no waste.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pfair_core::key::{EpdfKey, KeyCache, KeyDispatch, Pd2Key, PdKey, SubtaskKey};
use pfair_core::priority::PriorityOrder;
use pfair_numeric::{Rat, Time};
use pfair_obs::{NoopObserver, Observer, ReadyCause, SchedEvent};
use pfair_taskmodel::{SubtaskRef, TaskSystem};

use crate::cost::{checked_cost, CostModel};
use crate::emit::{emit_end, flush_ends};
use crate::schedule::{Placement, QuantumModel, Schedule};

/// Event payloads, ordered so simultaneous batches drain deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A processor completed its quantum.
    ProcFree(u32),
    /// A subtask became ready.
    Activate(SubtaskRef),
}

/// The ready set of the DVQ loop: push activated subtasks, pop the
/// highest-priority one. Two implementations share the event loop — a
/// precomputed-key binary heap (the default whenever the order registers a
/// key type) and a linear comparator scan (the fallback for orders without
/// one). Both pop in the same total order, so the produced schedules are
/// identical; the tests pin that down on the paper's golden traces.
trait ReadySet {
    fn push(&mut self, st: SubtaskRef);
    fn pop_best(&mut self) -> Option<SubtaskRef>;
    fn is_empty(&self) -> bool;
}

/// O(log n) ready set over precomputed keys.
struct KeyedReady<K: SubtaskKey> {
    cache: KeyCache<K>,
    heap: BinaryHeap<Reverse<(K, SubtaskRef)>>,
}

impl<K: SubtaskKey> KeyedReady<K> {
    fn new(sys: &TaskSystem) -> KeyedReady<K> {
        KeyedReady {
            cache: KeyCache::build(sys),
            heap: BinaryHeap::new(),
        }
    }
}

impl<K: SubtaskKey> ReadySet for KeyedReady<K> {
    fn push(&mut self, st: SubtaskRef) {
        self.heap.push(Reverse((self.cache.key(st), st)));
    }

    fn pop_best(&mut self) -> Option<SubtaskRef> {
        self.heap.pop().map(|Reverse((_, st))| st)
    }

    fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// O(n)-per-pop ready set calling the comparator (for orders with no
/// registered key type, e.g. PF or the ablations).
struct ComparatorReady<'a> {
    sys: &'a TaskSystem,
    order: &'a dyn PriorityOrder,
    items: Vec<SubtaskRef>,
}

impl ReadySet for ComparatorReady<'_> {
    fn push(&mut self, st: SubtaskRef) {
        self.items.push(st);
    }

    fn pop_best(&mut self) -> Option<SubtaskRef> {
        let (best_pos, _) = self
            .items
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| self.order.cmp(self.sys, a, b))?;
        Some(self.items.swap_remove(best_pos))
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Simulates `sys` on `m` processors under the DVQ model with priority
/// order `order` (the paper analyzes PD²-DVQ; any order is accepted so the
/// EPDF comparison of experiment E4 reuses this driver).
///
/// Dispatches on [`PriorityOrder::key_dispatch`]: orders with a
/// precomputed-key type (EPDF, PD², PD) run the event loop over a key
/// binary heap; others fall back to the comparator scan. The schedule is
/// identical either way.
///
/// Runs until every released subtask has been scheduled and completed.
#[must_use]
pub fn simulate_dvq(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
) -> Schedule {
    simulate_dvq_observed(sys, m, order, cost, &mut NoopObserver)
}

/// [`simulate_dvq`] with a streaming [`Observer`] attached. With
/// [`NoopObserver`] this monomorphizes to exactly [`simulate_dvq`]'s code
/// (every emission site is gated by the compile-time `O::ENABLED`).
#[must_use]
pub fn simulate_dvq_observed<O: Observer>(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
    obs: &mut O,
) -> Schedule {
    match order.key_dispatch() {
        KeyDispatch::Pd2 => run_dvq(sys, m, KeyedReady::<Pd2Key>::new(sys), cost, obs),
        KeyDispatch::Epdf => run_dvq(sys, m, KeyedReady::<EpdfKey>::new(sys), cost, obs),
        KeyDispatch::Pd => run_dvq(sys, m, KeyedReady::<PdKey>::new(sys), cost, obs),
        KeyDispatch::Comparator => {
            let ready = ComparatorReady {
                sys,
                order,
                items: Vec::with_capacity(sys.num_tasks()),
            };
            run_dvq(sys, m, ready, cost, obs)
        }
    }
}

/// The shared DVQ event loop, generic over the ready-set implementation.
fn run_dvq<R: ReadySet, O: Observer>(
    sys: &TaskSystem,
    m: u32,
    mut ready: R,
    cost: &mut dyn CostModel,
    obs: &mut O,
) -> Schedule {
    assert!(m >= 1, "need at least one processor");
    let total = sys.num_subtasks();
    let mut placements = Vec::with_capacity(total);

    // Min-heap of (time, event).
    let mut events: BinaryHeap<Reverse<(Time, Event)>> = BinaryHeap::new();
    // Seed: every chain head activates at its eligibility time; every
    // processor is free at time 0.
    for task in sys.tasks() {
        if let Some(head) = sys.task_subtask_refs(task.id).next() {
            let e = sys.subtask(head).eligible;
            events.push(Reverse((Time::int(e), Event::Activate(head))));
        }
    }
    for k in 0..m {
        events.push(Reverse((Time::ZERO, Event::ProcFree(k))));
    }

    let mut free: Vec<u32> = Vec::with_capacity(m as usize);
    let mut placed = 0usize;
    // Observability state: the in-flight quantum on each processor
    // `(subtask, completion)`, for `QuantumEnd` emission at its `ProcFree`.
    let mut running: Vec<Option<(SubtaskRef, Time)>> = if O::ENABLED {
        vec![None; m as usize]
    } else {
        Vec::new()
    };

    while placed < total {
        let Some(&Reverse((now, _))) = events.peek() else {
            // Every unplaced subtask owes the queue either an Activate or
            // the ProcFree that will trigger one, so an empty queue here is
            // a lost-event bug in this driver — abort loudly (also in
            // release builds) rather than looping forever on `placed <
            // total`.
            panic!(
                "DVQ event queue drained with only {placed}/{total} subtasks placed: \
                 an Activate/ProcFree event was lost (broken successor chain?)"
            );
        };
        if O::ENABLED {
            obs.on_event(&SchedEvent::Tick { at: now });
        }
        // Drain the batch at `now`. The event ordering (ProcFree ascending
        // by processor, then Activate) makes the emitted stream
        // deterministic too.
        while let Some(&Reverse((t, ev))) = events.peek() {
            if t != now {
                break;
            }
            events.pop();
            match ev {
                Event::ProcFree(k) => {
                    if O::ENABLED {
                        if let Some((st, completion)) = running[k as usize].take() {
                            emit_end(sys, st, k, completion, Rat::ZERO, obs);
                        }
                    }
                    free.push(k);
                }
                Event::Activate(st) => {
                    if O::ENABLED {
                        let s = sys.subtask(st);
                        let cause = if now == Time::int(s.eligible) {
                            ReadyCause::Eligibility
                        } else {
                            ReadyCause::Predecessor
                        };
                        obs.on_event(&SchedEvent::Ready {
                            id: s.id,
                            at: now,
                            cause,
                        });
                    }
                    ready.push(st);
                }
            }
        }
        free.sort_unstable();

        // Assign free processors to ready subtasks in priority order.
        while !free.is_empty() && !ready.is_empty() {
            let st = ready.pop_best().expect("ready nonempty");
            let proc = free.remove(0);
            let c = checked_cost(cost.cost(sys, st), st);
            let completion = now + c;
            placements.push(Placement {
                st,
                proc,
                start: now,
                cost: c,
                holds_until: completion,
            });
            placed += 1;
            if O::ENABLED {
                let s = sys.subtask(st);
                obs.on_event(&SchedEvent::QuantumStart {
                    id: s.id,
                    proc,
                    start: now,
                    cost: c,
                    holds_until: completion,
                    deadline: s.deadline,
                    bbit: s.bbit,
                    group_deadline: s.group_deadline,
                });
                running[proc as usize] = Some((st, completion));
            }
            events.push(Reverse((completion, Event::ProcFree(proc))));
            // The successor becomes ready once both eligible and its
            // predecessor (this subtask) has completed.
            if let Some(succ) = sys.subtask(st).succ {
                let act = Time::int(sys.subtask(succ).eligible).max(completion);
                events.push(Reverse((act, Event::Activate(succ))));
            }
        }
        if O::ENABLED && !free.is_empty() {
            obs.on_event(&SchedEvent::Idle {
                at: now,
                procs: free.len() as u32,
            });
        }
    }

    if O::ENABLED {
        // Quanta still in flight when the last subtask was placed: announce
        // their ends in completion order.
        let mut pending: Vec<crate::emit::PendingEnd> = running
            .iter_mut()
            .enumerate()
            .filter_map(|(k, slot)| {
                slot.take()
                    .map(|(st, completion)| (completion, k as u32, st, Rat::ZERO))
            })
            .collect();
        flush_ends(sys, &mut pending, obs);
    }

    Schedule::new(sys, QuantumModel::Dvq, m, placements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_numeric::Rat;
    use pfair_taskmodel::{release, SubtaskId, TaskId};

    use crate::cost::{FixedCosts, FullQuantum};

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    fn find(sys: &TaskSystem, task: u32, index: u64) -> SubtaskRef {
        sys.find(SubtaskId {
            task: TaskId(task),
            index,
        })
        .unwrap()
    }

    #[test]
    fn full_costs_reduce_to_sfq() {
        // With c = 1 everywhere, all completions are integral and DVQ
        // makes exactly the slot-boundary decisions of SFQ.
        let sys = fig2_system();
        let dvq = simulate_dvq(&sys, 2, &Pd2, &mut FullQuantum);
        let sfq = crate::sfq::simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        for (st, _) in sys.iter_refs() {
            assert_eq!(dvq.start(st), sfq.start(st), "{st:?}");
        }
    }

    #[test]
    fn fig2b_dvq_schedule_with_delta_yields() {
        // Fig. 2(b): A_1 and F_1 (scheduled at t = 1) execute for 1 − δ
        // only; both processors immediately start new quanta at 2 − δ and
        // are assigned to B_1 and C_1, blocking D_2 and E_2 at time 2.
        let sys = fig2_system();
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta) // A_1
            .with(TaskId(5), 1, Rat::ONE - delta); // F_1
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);

        let two_minus = Rat::int(2) - delta;
        assert_eq!(sched.start(find(&sys, 1, 1)), two_minus); // B_1
        assert_eq!(sched.start(find(&sys, 2, 1)), two_minus); // C_1
                                                              // D_2, E_2 blocked until 3 − δ; they still meet d = 4.
        let three_minus = Rat::int(3) - delta;
        assert_eq!(sched.start(find(&sys, 3, 2)), three_minus);
        assert_eq!(sched.start(find(&sys, 4, 2)), three_minus);
        assert!(sched.completion(find(&sys, 3, 2)) <= Rat::int(4));
        // F_2 runs at 4 − δ and completes at 5 − δ: it misses its deadline
        // (4) by 1 − δ — tardiness strictly below one quantum (Theorem 3).
        let f2 = find(&sys, 5, 2);
        assert_eq!(sched.start(f2), Rat::int(4) - delta);
        assert_eq!(sched.completion(f2), Rat::int(5) - delta);
        assert_eq!(sys.subtask(f2).deadline, 4);
        let tardiness = sched.completion(f2) - Rat::int(4);
        assert!(tardiness.is_positive() && tardiness < Rat::ONE);
    }

    #[test]
    fn tardiness_approaches_one_as_delta_shrinks() {
        // Tightness (E6): as δ → 0 the F_2 miss approaches a full quantum.
        let sys = fig2_system();
        for den in [10i64, 100, 10_000, 1_000_000] {
            let delta = Rat::new(1, den);
            let mut costs = FixedCosts::new(Rat::ONE)
                .with(TaskId(0), 1, Rat::ONE - delta)
                .with(TaskId(5), 1, Rat::ONE - delta);
            let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
            let f2 = find(&sys, 5, 2);
            let tardiness = sched.completion(f2) - Rat::int(4);
            assert_eq!(tardiness, Rat::ONE - delta);
        }
    }

    #[test]
    fn work_conserving_no_holds() {
        let sys = fig2_system();
        let mut costs = FixedCosts::new(Rat::new(9, 10));
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        for p in sched.placements() {
            assert_eq!(p.waste(), Rat::ZERO);
            assert_eq!(p.holds_until, p.completion());
        }
    }

    #[test]
    fn intra_task_sequential() {
        // A subtask never starts before its predecessor completes.
        let sys = release::periodic(&[(3, 4), (1, 2)], 12);
        let mut costs = FixedCosts::new(Rat::new(1, 2));
        let sched = simulate_dvq(&sys, 1, &Pd2, &mut costs);
        for (st, s) in sys.iter_refs() {
            if let Some(pred) = s.pred {
                assert!(sched.start(st) >= sched.completion(pred));
            }
            // And never before its eligibility time.
            assert!(sched.start(st) >= Rat::int(s.eligible));
        }
    }

    #[test]
    fn single_processor_serializes() {
        let sys = release::periodic(&[(1, 2), (1, 2)], 4);
        let sched = simulate_dvq(&sys, 1, &Pd2, &mut FullQuantum);
        let mut busy: Vec<(Time, Time)> = sched
            .placements()
            .iter()
            .map(|p| (p.start, p.completion()))
            .collect();
        busy.sort();
        for w in busy.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap on one processor");
        }
    }
}
