//! The DVQ model: desynchronized, variable-sized quanta (§3).
//!
//! The DVQ model is the work-conserving relaxation of SFQ: "if a task
//! yields before executing for a full quantum, then a new quantum begins on
//! the associated processor immediately". Scheduling decisions therefore
//! happen at arbitrary rational times, independently per processor, and the
//! paper's two priority inversions arise naturally:
//!
//! * a processor freeing at `t − δ` is handed to a lower-priority subtask
//!   because the higher-priority one only becomes eligible at `t`
//!   (*eligibility blocking*);
//! * a subtask whose predecessor runs up to `t` watches an early-freed
//!   processor go to lower-priority work, and at `t` loses its
//!   predecessor's processor to a newly-eligible subtask
//!   (*predecessor blocking*).
//!
//! # Mechanics
//!
//! Event-driven simulation over exact rational times:
//!
//! * `Activate(st)` events fire when a subtask becomes *ready* — at
//!   `max(e(T_i), completion of predecessor)`;
//! * `ProcFree(k)` events fire when a quantum completes.
//!
//! All events at the same instant are drained before any assignment; then
//! free processors (ascending index) are matched with ready subtasks in
//! priority order. A subtask scheduled at time `τ` with actual cost `c`
//! completes at `τ + c` and its processor is immediately reusable — no
//! holds, no waste.
//!
//! # The two-tier time representation
//!
//! The loop is written once, generic over a `TimeDomain` (see
//! `tdomain.rs`). When the cost model publishes a denominator hint
//! ([`crate::cost::CostModel::denominator_hint`])
//! and the run's event span fits `i64` ticks at that scale, the loop runs
//! in the `TickTimes` fast tier: event times are `QTime` tick counts,
//! heap comparisons are single integer compares, and rational arithmetic
//! disappears from the hot path. The first cost off the hinted grid (or any
//! overflow) triggers a mid-batch **bail**: the loop converts its whole
//! state to exact [`Rat`]s — losslessly, a tick count *is* a rational — and
//! the `ExactTimes` tier resumes at the same instant with the already
//! drawn cost, so RNG streams, observer streams, and schedules are
//! bit-identical down both tiers (see `tick_times_match_exact_times` and
//! `tests/keyed_equivalence.rs`).

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use pfair_core::key::{EpdfKey, KeyCache, KeyDispatch, Pd2Key, PdKey, SubtaskKey};
use pfair_core::priority::PriorityOrder;
use pfair_numeric::Rat;
use pfair_obs::{NoopObserver, Observer, ReadyCause, SchedEvent};
use pfair_taskmodel::{SubtaskRef, TaskSystem};

use crate::cost::{checked_cost, CostModel};
use crate::emit::{emit_end, flush_ends};
use crate::schedule::{Placement, QuantumModel, Schedule};
use crate::tdomain::{event_span, tick_scale, ExactTimes, TickTimes, TimeDomain};

/// Event payloads, ordered so simultaneous batches drain deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A processor completed its quantum.
    ProcFree(u32),
    /// A subtask became ready.
    Activate(SubtaskRef),
}

impl Event {
    /// The 64-bit payload code for [`TimeDomain::ev_key`]. Code order
    /// equals the derived `Ord` above: all `ProcFree` codes (`< 2^32`,
    /// ascending by processor) sort before all `Activate` codes
    /// (`2^32 | subtask`, ascending by subtask).
    fn code(self) -> u64 {
        match self {
            Event::ProcFree(k) => u64::from(k),
            Event::Activate(st) => (1 << 32) | u64::from(st.0),
        }
    }

    /// Inverse of [`Event::code`].
    fn from_code(code: u64) -> Event {
        #[allow(clippy::cast_possible_truncation)]
        let payload = code as u32;
        if code >> 32 == 0 {
            Event::ProcFree(payload)
        } else {
            Event::Activate(SubtaskRef(payload))
        }
    }
}

/// The ready set of the DVQ loop: push activated subtasks, pop the
/// highest-priority one. Two implementations share the event loop — a
/// deadline-bucketed queue over precomputed keys (the default whenever the
/// order registers a key type) and a linear comparator scan (the fallback
/// for orders without one). Both pop in the same total order, so the
/// produced schedules are identical; the tests pin that down on the
/// paper's golden traces.
trait ReadySet {
    fn push(&mut self, st: SubtaskRef);
    fn pop_best(&mut self) -> Option<SubtaskRef>;
    fn is_empty(&self) -> bool;
}

/// Hard cap on the number of deadline buckets: beyond this, the far tail
/// shares the last bucket (clamping is *correct* because in-bucket order
/// uses the full key, whose leading stage is the deadline — the tail
/// bucket just degrades toward a plain binary heap).
const MAX_BUCKETS: usize = 1 << 16;

/// Ready set over precomputed keys, bucketed by the keys' leading
/// comparison stage (the integer θ-adjusted pseudo-deadline).
///
/// Every priority order in `pfair-core` compares deadlines first
/// ([`SubtaskKey::deadline`]), so the bucket index alone decides most pops;
/// the remaining stages (b-bit, group deadline, weight, id) are evaluated
/// only on bucket collisions, via a per-bucket binary heap. Keys are
/// computed once in the [`KeyCache`] slab and copied inline into the
/// bucket entries, so sift comparisons read contiguous bucket memory
/// instead of chasing the slab on every step.
struct BucketReady<K: SubtaskKey> {
    cache: KeyCache<K>,
    buckets: Vec<Vec<(K, SubtaskRef)>>,
    /// Deadline of bucket 0.
    base: i64,
    /// First bucket that may be nonempty (monotone within a pop run;
    /// rewound by pushes of earlier deadlines).
    cursor: usize,
    len: usize,
}

impl<K: SubtaskKey> BucketReady<K> {
    fn new(sys: &TaskSystem) -> BucketReady<K> {
        let cache: KeyCache<K> = KeyCache::build(sys);
        let (mut lo, mut hi) = (i64::MAX, i64::MIN);
        for (st, _) in sys.iter_refs() {
            let d = cache.key(st).deadline();
            lo = lo.min(d);
            hi = hi.max(d);
        }
        let width = if lo > hi {
            1 // no subtasks; keep one bucket so indexing stays total
        } else {
            let span = i128::from(hi) - i128::from(lo) + 1;
            usize::try_from(span)
                .unwrap_or(MAX_BUCKETS)
                .min(MAX_BUCKETS)
        };
        BucketReady {
            cache,
            buckets: vec![Vec::new(); width],
            base: if lo > hi { 0 } else { lo },
            cursor: 0,
            len: 0,
        }
    }

    fn bucket_index(&self, d: i64) -> usize {
        let off = i128::from(d) - i128::from(self.base);
        usize::try_from(off)
            .expect("deadline below the bucket base: key cache and task system disagree")
            .min(self.buckets.len() - 1)
    }
}

impl<K: SubtaskKey> ReadySet for BucketReady<K> {
    fn push(&mut self, st: SubtaskRef) {
        let key = self.cache.key(st);
        let idx = self.bucket_index(key.deadline());
        if idx < self.cursor {
            self.cursor = idx;
        }
        heap_push(&mut self.buckets[idx], key, st);
        self.len += 1;
    }

    fn pop_best(&mut self) -> Option<SubtaskRef> {
        if self.len == 0 {
            return None;
        }
        while self.buckets[self.cursor].is_empty() {
            self.cursor += 1;
        }
        self.len -= 1;
        Some(heap_pop(&mut self.buckets[self.cursor]))
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Sift-up push into a min-heap of inline-keyed entries.
fn heap_push<K: SubtaskKey>(bucket: &mut Vec<(K, SubtaskRef)>, key: K, st: SubtaskRef) {
    bucket.push((key, st));
    let mut i = bucket.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if bucket[i].0 < bucket[parent].0 {
            bucket.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

/// Sift-down pop of the key-minimal entry; callers guarantee nonempty.
fn heap_pop<K: SubtaskKey>(bucket: &mut Vec<(K, SubtaskRef)>) -> SubtaskRef {
    let last = bucket.len() - 1;
    bucket.swap(0, last);
    let (_, best) = bucket.pop().expect("heap_pop on an empty bucket");
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        if l >= bucket.len() {
            break;
        }
        let child = if r < bucket.len() && bucket[r].0 < bucket[l].0 {
            r
        } else {
            l
        };
        if bucket[child].0 < bucket[i].0 {
            bucket.swap(i, child);
            i = child;
        } else {
            break;
        }
    }
    best
}

/// O(n)-per-pop ready set calling the comparator (for orders with no
/// registered key type, e.g. PF or the ablations).
struct ComparatorReady<'a> {
    sys: &'a TaskSystem,
    order: &'a dyn PriorityOrder,
    items: Vec<SubtaskRef>,
}

impl ReadySet for ComparatorReady<'_> {
    fn push(&mut self, st: SubtaskRef) {
        self.items.push(st);
    }

    fn pop_best(&mut self) -> Option<SubtaskRef> {
        let (best_pos, _) = self
            .items
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| self.order.cmp(self.sys, a, b))?;
        let best = self.items.swap_remove(best_pos);
        // The keyed path breaks every tie by subtask id (the keys' last
        // stage); a comparator that leaves ties unresolved would silently
        // pop in scan order instead and diverge from it. Surface that here
        // rather than in a downstream schedule diff.
        debug_assert!(
            self.items
                .iter()
                .all(|&o| self.order.cmp(self.sys, best, o) != Ordering::Equal),
            "comparator {} left a tie unresolved at pop ({best:?} ties another ready \
             subtask): ComparatorReady needs a total order — pin ties by subtask id",
            self.order.name()
        );
        Some(best)
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Simulates `sys` on `m` processors under the DVQ model with priority
/// order `order` (the paper analyzes PD²-DVQ; any order is accepted so the
/// EPDF comparison of experiment E4 reuses this driver).
///
/// Dispatches on [`PriorityOrder::key_dispatch`]: orders with a
/// precomputed-key type (EPDF, PD², PD) run the event loop over a
/// deadline-bucketed key queue; others fall back to the comparator scan.
/// The schedule is identical either way.
///
/// Runs until every released subtask has been scheduled and completed.
#[must_use]
pub fn simulate_dvq(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
) -> Schedule {
    simulate_dvq_observed(sys, m, order, cost, &mut NoopObserver)
}

/// [`simulate_dvq`] with a streaming [`Observer`] attached. With
/// [`NoopObserver`] this monomorphizes to exactly [`simulate_dvq`]'s code
/// (every emission site is gated by the compile-time `O::ENABLED`).
#[must_use]
pub fn simulate_dvq_observed<O: Observer>(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
    obs: &mut O,
) -> Schedule {
    match order.key_dispatch() {
        KeyDispatch::Pd2 => run_dvq(sys, m, BucketReady::<Pd2Key>::new(sys), cost, obs),
        KeyDispatch::Epdf => run_dvq(sys, m, BucketReady::<EpdfKey>::new(sys), cost, obs),
        KeyDispatch::Pd => run_dvq(sys, m, BucketReady::<PdKey>::new(sys), cost, obs),
        KeyDispatch::Comparator => {
            let ready = ComparatorReady {
                sys,
                order,
                items: Vec::with_capacity(sys.num_tasks()),
            };
            run_dvq(sys, m, ready, cost, obs)
        }
    }
}

/// The loop state, generic over the time domain so a tick-tier run can
/// hand its whole progress to the exact tier on a bail.
struct LoopState<D: TimeDomain> {
    /// Min-heap of packed (time, event) keys ([`TimeDomain::ev_key`]).
    events: BinaryHeap<Reverse<D::EvKey>>,
    /// Free processors as a min-heap, so `pop()` serves the lowest index
    /// first (the documented assignment order) in O(log M).
    free: BinaryHeap<Reverse<u32>>,
    /// Observability state: the in-flight quantum on each processor
    /// `(subtask, completion)`, for `QuantumEnd` emission at its
    /// `ProcFree`. Written only when the observer is enabled.
    running: Vec<Option<(SubtaskRef, D::T)>>,
    placements: Vec<Placement>,
    placed: usize,
}

/// A fast-tier abort: the instant it happened, the dispatch it could not
/// represent (cost already drawn — never redrawn, keeping RNG streams
/// identical), and the whole loop state converted to exact rationals.
struct Bail {
    now: Rat,
    pending: (SubtaskRef, Rat),
    state: LoopState<ExactTimes>,
}

/// The initial loop state in domain `dom`: every chain head activates at
/// its eligibility time; every processor is free at time 0.
fn seed_dvq<D: TimeDomain>(dom: &D, sys: &TaskSystem, m: u32) -> LoopState<D> {
    let mut events = BinaryHeap::new();
    for task in sys.tasks() {
        if let Some(head) = sys.task_subtask_refs(task.id).next() {
            let e = sys.subtask(head).eligible;
            let t = dom
                .int(e)
                .expect("seed eligibility is within the pre-checked event span");
            events.push(Reverse(dom.ev_key(t, Event::Activate(head).code())));
        }
    }
    let zero = dom.int(0).expect("time zero is within the event span");
    for k in 0..m {
        events.push(Reverse(dom.ev_key(zero, Event::ProcFree(k).code())));
    }
    LoopState {
        events,
        free: BinaryHeap::with_capacity(m as usize),
        running: vec![None; m as usize],
        placements: Vec::with_capacity(sys.num_subtasks()),
        placed: 0,
    }
}

/// Lossless state conversion to the exact tier (`to_rat` is total).
fn migrate_dvq<D: TimeDomain>(dom: &D, s: &mut LoopState<D>) -> LoopState<ExactTimes> {
    LoopState {
        events: s
            .events
            .drain()
            .map(|Reverse(k)| {
                let (t, code) = dom.ev_split(k);
                Reverse(ExactTimes.ev_key(dom.to_rat(t), code))
            })
            .collect(),
        free: std::mem::take(&mut s.free),
        running: s
            .running
            .iter_mut()
            .map(|slot| slot.take().map(|(st, t)| (st, dom.to_rat(t))))
            .collect(),
        placements: std::mem::take(&mut s.placements),
        placed: s.placed,
    }
}

/// Converts `t` to a rational at most once per batch, memoized in `slot`.
fn lazy_rat<D: TimeDomain>(dom: &D, t: D::T, slot: &mut Option<Rat>) -> Rat {
    *slot.get_or_insert_with(|| dom.to_rat(t))
}

/// The borrows one event-loop run needs, bundled so the tick and exact
/// tiers can take them in turn.
struct DvqLoop<'a, D: TimeDomain, R: ReadySet, O: Observer> {
    dom: &'a D,
    sys: &'a TaskSystem,
    m: u32,
    ready: &'a mut R,
    cost: &'a mut dyn CostModel,
    obs: &'a mut O,
}

impl<D: TimeDomain, R: ReadySet, O: Observer> DvqLoop<'_, D, R, O> {
    /// Runs the event loop to completion in this tier's arithmetic, or
    /// bails with the exact-tier state. `resume` re-enters a batch that a
    /// previous tier abandoned: its `Tick` was already emitted, and the
    /// first dispatch reuses the carried-over cost.
    fn run_dvq_tier(
        &mut self,
        mut s: LoopState<D>,
        resume: Option<(Rat, (SubtaskRef, Rat))>,
    ) -> Result<Schedule, Box<Bail>> {
        let total = self.sys.num_subtasks();
        if let Some((now_r, pending)) = resume {
            let now = self
                .dom
                .from_rat(now_r)
                .expect("a bail instant is representable in the resuming domain");
            self.assign_batch(&mut s, now, Some(pending))?;
        }
        while s.placed < total {
            let Some(&Reverse(head)) = s.events.peek() else {
                // Every unplaced subtask owes the queue either an Activate
                // or the ProcFree that will trigger one, so an empty queue
                // here is a lost-event bug in this driver — abort loudly
                // (also in release builds) rather than looping forever on
                // `placed < total`.
                panic!(
                    "DVQ event queue drained with only {placed}/{total} subtasks placed: \
                     an Activate/ProcFree event was lost (broken successor chain?)",
                    placed = s.placed
                );
            };
            let (now, _) = self.dom.ev_split(head);
            if O::ENABLED {
                self.obs.on_event(&SchedEvent::Tick {
                    at: self.dom.to_rat(now),
                });
            }
            // Drain the batch at `now`. The event ordering (ProcFree
            // ascending by processor, then Activate) makes the emitted
            // stream deterministic too.
            while let Some(&Reverse(k)) = s.events.peek() {
                let (t, code) = self.dom.ev_split(k);
                if t != now {
                    break;
                }
                s.events.pop();
                match Event::from_code(code) {
                    Event::ProcFree(k) => {
                        if O::ENABLED {
                            if let Some((st, completion)) = s.running[k as usize].take() {
                                emit_end(
                                    self.sys,
                                    st,
                                    k,
                                    self.dom.to_rat(completion),
                                    Rat::ZERO,
                                    self.obs,
                                );
                            }
                        }
                        s.free.push(Reverse(k));
                    }
                    Event::Activate(st) => {
                        if O::ENABLED {
                            let sub = self.sys.subtask(st);
                            let cause = if self.dom.int(sub.eligible) == Some(now) {
                                ReadyCause::Eligibility
                            } else {
                                ReadyCause::Predecessor
                            };
                            self.obs.on_event(&SchedEvent::Ready {
                                id: sub.id,
                                at: self.dom.to_rat(now),
                                cause,
                            });
                        }
                        self.ready.push(st);
                    }
                }
            }
            self.assign_batch(&mut s, now, None)?;
        }

        if O::ENABLED {
            // Quanta still in flight when the last subtask was placed:
            // announce their ends in completion order.
            let mut pending: Vec<crate::emit::PendingEnd> = s
                .running
                .iter_mut()
                .enumerate()
                .filter_map(|(k, slot)| {
                    slot.take().map(|(st, completion)| {
                        (self.dom.to_rat(completion), k as u32, st, Rat::ZERO)
                    })
                })
                .collect();
            flush_ends(self.sys, &mut pending, self.obs);
        }

        Ok(Schedule::new(
            self.sys,
            QuantumModel::Dvq,
            self.m,
            s.placements,
        ))
    }

    /// Assigns free processors to ready subtasks in priority order, then
    /// announces residual idleness. Honors the bail-out contract: for each
    /// dispatch, every fallible time conversion runs *before* any side
    /// effect, so an unrepresentable value aborts with nothing half-done.
    fn assign_batch(
        &mut self,
        s: &mut LoopState<D>,
        now: D::T,
        mut carried: Option<(SubtaskRef, Rat)>,
    ) -> Result<(), Box<Bail>> {
        // The rational value of `now` is only needed once something is
        // emitted at this instant (a placement, a bail, an idle report);
        // pure-drain batches skip the conversion entirely.
        let mut now_r_slot: Option<Rat> = None;
        loop {
            let (st, c) = match carried.take() {
                Some(p) => p,
                None => {
                    if s.free.is_empty() || self.ready.is_empty() {
                        break;
                    }
                    let st = self.ready.pop_best().expect("ready nonempty");
                    (st, checked_cost(self.cost.cost(self.sys, st), st))
                }
            };
            // Fallible conversions first (completion, successor
            // eligibility); side effects only once both are in hand.
            let conv =
                self.dom
                    .add_cost(now, c)
                    .and_then(|completion| match self.sys.subtask(st).succ {
                        None => Some((completion, None)),
                        Some(succ) => self
                            .dom
                            .int(self.sys.subtask(succ).eligible)
                            .map(|e| (completion, Some((succ, e)))),
                    });
            let Some((completion, succ_at)) = conv else {
                return Err(Box::new(Bail {
                    now: lazy_rat(self.dom, now, &mut now_r_slot),
                    pending: (st, c),
                    state: migrate_dvq(self.dom, s),
                }));
            };
            let now_r = lazy_rat(self.dom, now, &mut now_r_slot);
            let Reverse(proc) = s.free.pop().expect("free nonempty in the assignment loop");
            s.placements.push(Placement {
                st,
                proc,
                start: now_r,
                cost: c,
                holds_until: self.dom.to_rat(completion),
            });
            s.placed += 1;
            if O::ENABLED {
                let sub = self.sys.subtask(st);
                self.obs.on_event(&SchedEvent::QuantumStart {
                    id: sub.id,
                    proc,
                    start: now_r,
                    cost: c,
                    holds_until: self.dom.to_rat(completion),
                    deadline: sub.deadline,
                    bbit: sub.bbit,
                    group_deadline: sub.group_deadline,
                });
                s.running[proc as usize] = Some((st, completion));
            }
            s.events.push(Reverse(
                self.dom.ev_key(completion, Event::ProcFree(proc).code()),
            ));
            // The successor becomes ready once both eligible and its
            // predecessor (this subtask) has completed.
            if let Some((succ, e)) = succ_at {
                s.events.push(Reverse(
                    self.dom
                        .ev_key(e.max(completion), Event::Activate(succ).code()),
                ));
            }
        }
        if O::ENABLED && !s.free.is_empty() {
            self.obs.on_event(&SchedEvent::Idle {
                at: lazy_rat(self.dom, now, &mut now_r_slot),
                procs: s.free.len() as u32,
            });
        }
        Ok(())
    }
}

/// The shared DVQ event loop, generic over the ready-set implementation.
/// Picks the time tier: tick arithmetic when the cost model's denominator
/// hint and the event span allow it, exact rationals otherwise — and
/// migrates tick → exact mid-run on the first unrepresentable value.
fn run_dvq<R: ReadySet, O: Observer>(
    sys: &TaskSystem,
    m: u32,
    mut ready: R,
    cost: &mut dyn CostModel,
    obs: &mut O,
) -> Schedule {
    assert!(m >= 1, "need at least one processor");
    let scale = event_span(sys).and_then(|span| tick_scale(cost.denominator_hint(), span));
    let bail = if let Some(scale) = scale {
        let dom = TickTimes { scale };
        let state = seed_dvq(&dom, sys, m);
        let mut fast = DvqLoop {
            dom: &dom,
            sys,
            m,
            ready: &mut ready,
            cost,
            obs,
        };
        match fast.run_dvq_tier(state, None) {
            Ok(sched) => return sched,
            Err(bail) => Some(*bail),
        }
    } else {
        None
    };
    let dom = ExactTimes;
    let (state, resume) = match bail {
        Some(Bail {
            now,
            pending,
            state,
        }) => (state, Some((now, pending))),
        None => (seed_dvq(&dom, sys, m), None),
    };
    let mut exact = DvqLoop {
        dom: &dom,
        sys,
        m,
        ready: &mut ready,
        cost,
        obs,
    };
    match exact.run_dvq_tier(state, resume) {
        Ok(sched) => sched,
        Err(_) => unreachable!("the exact time domain never bails"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::{ComparatorOnly, Pd2};
    use pfair_numeric::{Rat, Time};
    use pfair_taskmodel::{release, SubtaskId, TaskId};

    use crate::cost::{ExactOnly, FixedCosts, FullQuantum};

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    fn find(sys: &TaskSystem, task: u32, index: u64) -> SubtaskRef {
        sys.find(SubtaskId {
            task: TaskId(task),
            index,
        })
        .unwrap()
    }

    #[test]
    fn full_costs_reduce_to_sfq() {
        // With c = 1 everywhere, all completions are integral and DVQ
        // makes exactly the slot-boundary decisions of SFQ.
        let sys = fig2_system();
        let dvq = simulate_dvq(&sys, 2, &Pd2, &mut FullQuantum);
        let sfq = crate::sfq::simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        for (st, _) in sys.iter_refs() {
            assert_eq!(dvq.start(st), sfq.start(st), "{st:?}");
        }
    }

    #[test]
    fn fig2b_dvq_schedule_with_delta_yields() {
        // Fig. 2(b): A_1 and F_1 (scheduled at t = 1) execute for 1 − δ
        // only; both processors immediately start new quanta at 2 − δ and
        // are assigned to B_1 and C_1, blocking D_2 and E_2 at time 2.
        let sys = fig2_system();
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta) // A_1
            .with(TaskId(5), 1, Rat::ONE - delta); // F_1
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);

        let two_minus = Rat::int(2) - delta;
        assert_eq!(sched.start(find(&sys, 1, 1)), two_minus); // B_1
        assert_eq!(sched.start(find(&sys, 2, 1)), two_minus); // C_1
                                                              // D_2, E_2 blocked until 3 − δ; they still meet d = 4.
        let three_minus = Rat::int(3) - delta;
        assert_eq!(sched.start(find(&sys, 3, 2)), three_minus);
        assert_eq!(sched.start(find(&sys, 4, 2)), three_minus);
        assert!(sched.completion(find(&sys, 3, 2)) <= Rat::int(4));
        // F_2 runs at 4 − δ and completes at 5 − δ: it misses its deadline
        // (4) by 1 − δ — tardiness strictly below one quantum (Theorem 3).
        let f2 = find(&sys, 5, 2);
        assert_eq!(sched.start(f2), Rat::int(4) - delta);
        assert_eq!(sched.completion(f2), Rat::int(5) - delta);
        assert_eq!(sys.subtask(f2).deadline, 4);
        let tardiness = sched.completion(f2) - Rat::int(4);
        assert!(tardiness.is_positive() && tardiness < Rat::ONE);
    }

    #[test]
    fn tardiness_approaches_one_as_delta_shrinks() {
        // Tightness (E6): as δ → 0 the F_2 miss approaches a full quantum.
        let sys = fig2_system();
        for den in [10i64, 100, 10_000, 1_000_000] {
            let delta = Rat::new(1, den);
            let mut costs = FixedCosts::new(Rat::ONE)
                .with(TaskId(0), 1, Rat::ONE - delta)
                .with(TaskId(5), 1, Rat::ONE - delta);
            let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
            let f2 = find(&sys, 5, 2);
            let tardiness = sched.completion(f2) - Rat::int(4);
            assert_eq!(tardiness, Rat::ONE - delta);
        }
    }

    #[test]
    fn work_conserving_no_holds() {
        let sys = fig2_system();
        let mut costs = FixedCosts::new(Rat::new(9, 10));
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        for p in sched.placements() {
            assert_eq!(p.waste(), Rat::ZERO);
            assert_eq!(p.holds_until, p.completion());
        }
    }

    #[test]
    fn intra_task_sequential() {
        // A subtask never starts before its predecessor completes.
        let sys = release::periodic(&[(3, 4), (1, 2)], 12);
        let mut costs = FixedCosts::new(Rat::new(1, 2));
        let sched = simulate_dvq(&sys, 1, &Pd2, &mut costs);
        for (st, s) in sys.iter_refs() {
            if let Some(pred) = s.pred {
                assert!(sched.start(st) >= sched.completion(pred));
            }
            // And never before its eligibility time.
            assert!(sched.start(st) >= Rat::int(s.eligible));
        }
    }

    #[test]
    fn single_processor_serializes() {
        let sys = release::periodic(&[(1, 2), (1, 2)], 4);
        let sched = simulate_dvq(&sys, 1, &Pd2, &mut FullQuantum);
        let mut busy: Vec<(Time, Time)> = sched
            .placements()
            .iter()
            .map(|p| (p.start, p.completion()))
            .collect();
        busy.sort();
        for w in busy.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap on one processor");
        }
    }

    #[test]
    fn processors_assigned_in_ascending_index_order() {
        // Regression for the free-list order: within one batch, the k-th
        // pick by priority lands on the k-th smallest free processor index.
        let sys = release::periodic(&[(1, 2); 6], 4);
        let sched = simulate_dvq(&sys, 3, &Pd2, &mut FullQuantum);
        let mut batches: std::collections::BTreeMap<Time, Vec<(SubtaskRef, u32)>> =
            std::collections::BTreeMap::new();
        for p in sched.placements() {
            batches.entry(p.start).or_default().push((p.st, p.proc));
        }
        let cache: KeyCache<Pd2Key> = KeyCache::build(&sys);
        for (start, mut batch) in batches {
            // Priority order within the batch is the order the loop popped;
            // the processors handed out must ascend with it.
            batch.sort_by_key(|&(st, _)| cache.key(st));
            let procs: Vec<u32> = batch.iter().map(|&(_, proc)| proc).collect();
            let mut sorted = procs.clone();
            sorted.sort_unstable();
            assert_eq!(procs, sorted, "batch at {start:?} assigned out of order");
        }
    }

    #[test]
    fn duplicate_key_ties_pop_identically_keyed_and_comparator() {
        // Same-weight tasks tie on every key stage except the id; both
        // ready-set implementations must break those ties identically
        // (satellite for the ComparatorReady tie assertion).
        let sys = release::periodic(&[(1, 2); 5], 8);
        let mut a = BucketReady::<Pd2Key>::new(&sys);
        let mut b = ComparatorReady {
            sys: &sys,
            order: &Pd2,
            items: Vec::new(),
        };
        for (st, _) in sys.iter_refs() {
            a.push(st);
            b.push(st);
        }
        while !a.is_empty() {
            assert_eq!(a.pop_best(), b.pop_best());
        }
        assert!(b.is_empty() && b.pop_best().is_none() && a.pop_best().is_none());

        // And end to end: the full schedules agree placement for placement.
        let keyed = simulate_dvq(&sys, 2, &Pd2, &mut FullQuantum);
        let scanned = simulate_dvq(&sys, 2, &ComparatorOnly(&Pd2), &mut FullQuantum);
        for (st, _) in sys.iter_refs() {
            assert_eq!(keyed.placement(st).start, scanned.placement(st).start);
            assert_eq!(keyed.placement(st).proc, scanned.placement(st).proc);
        }
    }

    #[test]
    fn tick_times_match_exact_times() {
        // The same workload down both tiers: FixedCosts publishes a
        // denominator hint (tick fast path); ExactOnly withholds it (exact
        // path). Schedules must be identical, placement for placement.
        let sys = fig2_system();
        let delta = Rat::new(1, 4);
        let costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        assert_eq!(costs.denominator_hint(), Some(4), "fast path armed");
        let fast = simulate_dvq(&sys, 2, &Pd2, &mut costs.clone());
        let mut inner = costs;
        let exact = simulate_dvq(&sys, 2, &Pd2, &mut ExactOnly(&mut inner));
        assert_eq!(fast.placements(), exact.placements());
    }

    /// Lies about its grid: hints denominator 2 but emits a cost with
    /// denominator 3 on the `trip`-th draw — forcing a mid-batch bail from
    /// the tick tier to the exact tier.
    struct WrongHint {
        draws: usize,
        trip: usize,
    }

    impl CostModel for WrongHint {
        fn cost(&mut self, _sys: &TaskSystem, _st: SubtaskRef) -> Rat {
            self.draws += 1;
            if self.draws == self.trip {
                Rat::new(1, 3)
            } else {
                Rat::new(1, 2)
            }
        }

        fn denominator_hint(&self) -> Option<i64> {
            Some(2)
        }
    }

    /// Records every emission, for stream-identity checks.
    struct Record(Vec<SchedEvent>);

    impl Observer for Record {
        fn on_event(&mut self, ev: &SchedEvent) {
            self.0.push(ev.clone());
        }
    }

    #[test]
    fn mid_run_migration_is_invisible() {
        // A wrong denominator hint must cost performance only: the run
        // bails to exact arithmetic at the first off-grid cost, and both
        // the schedule and the observed event stream are identical to an
        // all-exact run of the same model.
        let sys = release::periodic(&[(1, 2), (1, 3), (2, 5), (3, 4)], 30);
        for trip in [1usize, 3, 7, 20] {
            let mut migrating = Record(Vec::new());
            let a = simulate_dvq_observed(
                &sys,
                2,
                &Pd2,
                &mut WrongHint { draws: 0, trip },
                &mut migrating,
            );
            let mut all_exact = Record(Vec::new());
            let mut inner = WrongHint { draws: 0, trip };
            let b =
                simulate_dvq_observed(&sys, 2, &Pd2, &mut ExactOnly(&mut inner), &mut all_exact);
            assert_eq!(a.placements(), b.placements(), "trip = {trip}");
            assert_eq!(migrating.0, all_exact.0, "trip = {trip}");
        }
    }

    use proptest::prelude::*;

    /// Pops both ready sets dry, asserting they agree pop for pop.
    fn drain_and_compare(bucket: &mut BucketReady<Pd2Key>, scan: &mut ComparatorReady<'_>) {
        while !bucket.is_empty() {
            assert_eq!(bucket.pop_best(), scan.pop_best());
        }
        assert!(scan.is_empty());
        assert!(bucket.pop_best().is_none() && scan.pop_best().is_none());
    }

    proptest! {
        /// Arbitrary push/pop interleavings agree with the comparator scan.
        /// Pushes arrive latest-deadline first, so a push after a pop run
        /// lands *before* the monotone cursor and must rewind it — the
        /// regression surface of the bucketed queue's one mutable
        /// shortcut.
        #[test]
        fn prop_bucket_interleaving_matches_comparator(
            raw in proptest::collection::vec((1i64..=6, 1i64..=6), 1..4),
            ops in proptest::collection::vec(0u8..2, 1..60),
        ) {
            let weights: Vec<(i64, i64)> =
                raw.iter().map(|&(a, p)| (a.min(p), p)).collect();
            let sys = release::periodic(&weights, 12);
            let mut bucket = BucketReady::<Pd2Key>::new(&sys);
            let mut scan = ComparatorReady {
                sys: &sys,
                order: &Pd2,
                items: Vec::new(),
            };
            let mut pending: Vec<SubtaskRef> = sys.iter_refs().map(|(st, _)| st).collect();
            pending.sort_by_key(|&st| sys.subtask(st).deadline); // pop() yields latest first
            for &op in &ops {
                if op == 1 {
                    if let Some(st) = pending.pop() {
                        bucket.push(st);
                        scan.push(st);
                    }
                } else {
                    prop_assert_eq!(bucket.pop_best(), scan.pop_best());
                }
            }
            for st in pending {
                bucket.push(st);
                scan.push(st);
            }
            drain_and_compare(&mut bucket, &mut scan);
        }

        /// A bucket table squeezed to an arbitrary tiny width (the
        /// MAX_BUCKETS clamp in miniature: every deadline past the end
        /// shares the tail bucket) still pops in exactly the comparator
        /// order, because in-bucket order uses the full key.
        #[test]
        fn prop_clamped_width_still_pops_in_order(
            raw in proptest::collection::vec((1i64..=6, 1i64..=6), 1..4),
            width in 1usize..4,
        ) {
            let weights: Vec<(i64, i64)> =
                raw.iter().map(|&(a, p)| (a.min(p), p)).collect();
            let sys = release::periodic(&weights, 12);
            let mut bucket = BucketReady::<Pd2Key>::new(&sys);
            bucket.buckets = vec![Vec::new(); width];
            bucket.cursor = 0;
            let mut scan = ComparatorReady {
                sys: &sys,
                order: &Pd2,
                items: Vec::new(),
            };
            for (st, _) in sys.iter_refs() {
                bucket.push(st);
                scan.push(st);
            }
            drain_and_compare(&mut bucket, &mut scan);
        }

        /// Adversarial deadline collisions: many identical-weight tasks tie
        /// on every key stage except the id, piling into the same buckets.
        /// The in-bucket heap must still break every tie exactly as the
        /// comparator does.
        #[test]
        fn prop_deadline_collisions_tie_break_identically(
            count in 1usize..16,
            p in 1i64..=4,
            ops in proptest::collection::vec(0u8..2, 1..48),
        ) {
            let weights = vec![(1, p); count];
            let sys = release::periodic(&weights, 2 * p);
            let mut bucket = BucketReady::<Pd2Key>::new(&sys);
            let mut scan = ComparatorReady {
                sys: &sys,
                order: &Pd2,
                items: Vec::new(),
            };
            let mut pending: Vec<SubtaskRef> = sys.iter_refs().map(|(st, _)| st).collect();
            pending.reverse(); // push ascending subtask ids
            for &op in &ops {
                if op == 1 {
                    if let Some(st) = pending.pop() {
                        bucket.push(st);
                        scan.push(st);
                    }
                } else {
                    prop_assert_eq!(bucket.pop_best(), scan.pop_best());
                }
            }
            for st in pending {
                bucket.push(st);
                scan.push(st);
            }
            drain_and_compare(&mut bucket, &mut scan);
        }
    }

    #[test]
    fn bucket_width_clamps_at_max_buckets() {
        // A deadline span wider than MAX_BUCKETS must clamp the table and
        // still pop correctly (the far tail shares the last bucket).
        let sys = release::periodic(&[(1, 2), (1, 1 << 17)], 12); // span ≫ MAX_BUCKETS
        let ready = BucketReady::<Pd2Key>::new(&sys);
        assert_eq!(ready.buckets.len(), MAX_BUCKETS);
        let mut ready = ready;
        let mut scan = ComparatorReady {
            sys: &sys,
            order: &Pd2,
            items: Vec::new(),
        };
        for (st, _) in sys.iter_refs() {
            ready.push(st);
            scan.push(st);
        }
        drain_and_compare(&mut ready, &mut scan);
    }

    #[test]
    fn far_deadlines_share_the_clamped_tail_bucket() {
        // Deadline spans past MAX_BUCKETS clamp into the last bucket; the
        // full-key in-bucket order keeps pops correct regardless.
        let sys = release::periodic(&[(1, 2), (1, 2)], 4);
        let mut ready = BucketReady::<Pd2Key>::new(&sys);
        // Force a tiny bucket table so every push collides in the tail.
        ready.buckets = vec![Vec::new(); 1];
        ready.cursor = 0;
        let mut scan = ComparatorReady {
            sys: &sys,
            order: &Pd2,
            items: Vec::new(),
        };
        for (st, _) in sys.iter_refs() {
            ready.push(st);
            scan.push(st);
        }
        while !ready.is_empty() {
            assert_eq!(ready.pop_best(), scan.pop_best());
        }
    }
}
