//! Actual execution-cost models (`c(T_i) ∈ (0, 1]`).
//!
//! Pfair budgets every subtask a full quantum, but WCET estimates are
//! pessimistic: "many task invocations will execute for less than their
//! WCETs" (§1). A [`CostModel`] supplies the *actual* cost of each subtask;
//! the SFQ simulator wastes `1 − c` at the end of each quantum while the
//! DVQ simulator reclaims it — the behavioural gap the paper studies.
//!
//! Deterministic models live here (the figure reproductions need exact
//! per-subtask yields like `1 − δ`); randomized models (uniform, bimodal)
//! live in `pfair-workload`, keeping this crate free of RNG dependencies.

use std::collections::BTreeMap;

use pfair_numeric::{checked_lcm, Rat};
use pfair_taskmodel::{SubtaskId, SubtaskRef, TaskSystem};

/// Supplies the actual execution cost `c(T_i) ∈ (0, 1]` of each subtask.
///
/// `&mut self` so stochastic implementations can carry RNG state. The
/// simulators funnel every cost through [`checked_cost`], so a model that
/// emits a value outside `(0, 1]` panics at the point of use.
pub trait CostModel {
    /// The actual cost of `st`.
    fn cost(&mut self, sys: &TaskSystem, st: SubtaskRef) -> Rat;

    /// A `d > 0` such that every cost this model will ever produce has a
    /// reduced denominator dividing `d` — or `None` when no such bound is
    /// known (the default).
    ///
    /// Purely **advisory**: the simulators use it to pick the fixed-point
    /// tick scale of their `QTime` fast path up front, but still check
    /// every drawn cost against the scale at dispatch time and migrate the
    /// run to exact [`Rat`] arithmetic on the first mismatch. A wrong hint
    /// therefore costs performance, never correctness — and `None` simply
    /// keeps the whole run on the exact path.
    fn denominator_hint(&self) -> Option<i64> {
        None
    }
}

/// Validates a cost: panics unless `0 < c ≤ 1`.
#[must_use]
pub fn checked_cost(c: Rat, st: SubtaskRef) -> Rat {
    assert!(
        c.is_positive() && c <= Rat::ONE,
        "cost model produced c = {c} for {st:?}; must satisfy 0 < c <= 1"
    );
    c
}

/// Every subtask uses its full quantum (`c = 1`). Under this model SFQ and
/// DVQ coincide and PD² misses nothing (the classical optimality setting).
#[derive(Clone, Copy, Debug, Default)]
pub struct FullQuantum;

impl CostModel for FullQuantum {
    fn cost(&mut self, _sys: &TaskSystem, _st: SubtaskRef) -> Rat {
        Rat::ONE
    }

    fn denominator_hint(&self) -> Option<i64> {
        Some(1)
    }
}

/// Explicit per-subtask costs with a default — the model behind the
/// paper's worked examples ("subtasks `A_1` and `F_1` … execute for an
/// interval `1 − δ` only").
///
/// ```
/// use pfair_numeric::Rat;
/// use pfair_sim::FixedCosts;
/// use pfair_taskmodel::{SubtaskId, TaskId};
/// let delta = Rat::new(1, 4);
/// let costs = FixedCosts::new(Rat::ONE)
///     .with(TaskId(0), 1, Rat::ONE - delta)   // A_1 yields δ early
///     .with(TaskId(5), 1, Rat::ONE - delta);  // F_1 yields δ early
/// ```
#[derive(Clone, Debug)]
pub struct FixedCosts {
    default: Rat,
    map: BTreeMap<SubtaskId, Rat>,
}

impl FixedCosts {
    /// A model where every unlisted subtask costs `default`.
    #[must_use]
    pub fn new(default: Rat) -> FixedCosts {
        FixedCosts {
            default,
            map: BTreeMap::new(),
        }
    }

    /// Sets the cost of `T_index` of `task` (builder style).
    #[must_use]
    pub fn with(mut self, task: pfair_taskmodel::TaskId, index: u64, cost: Rat) -> FixedCosts {
        self.map.insert(SubtaskId { task, index }, cost);
        self
    }

    /// Sets the cost of a subtask by id.
    pub fn set(&mut self, id: SubtaskId, cost: Rat) {
        self.map.insert(id, cost);
    }
}

impl CostModel for FixedCosts {
    fn cost(&mut self, sys: &TaskSystem, st: SubtaskRef) -> Rat {
        let id = sys.subtask(st).id;
        self.map.get(&id).copied().unwrap_or(self.default)
    }

    fn denominator_hint(&self) -> Option<i64> {
        // lcm over the default's and every override's denominator; `None`
        // if any denominator exceeds i64 or the lcm overflows.
        let mut d = i64::try_from(self.default.den()).ok()?;
        for c in self.map.values() {
            d = checked_lcm(d, i64::try_from(c.den()).ok()?)?;
        }
        Some(d)
    }
}

/// Every subtask costs the same fixed fraction of a quantum — the simplest
/// "mean early yield" model, used by the waste/reclamation experiment
/// (E5) for its deterministic sweeps.
#[derive(Clone, Copy, Debug)]
pub struct ScaledCost(pub Rat);

impl CostModel for ScaledCost {
    fn cost(&mut self, _sys: &TaskSystem, _st: SubtaskRef) -> Rat {
        self.0
    }

    fn denominator_hint(&self) -> Option<i64> {
        i64::try_from(self.0.den()).ok()
    }
}

/// Forces the exact-`Rat` event loop for any inner model by withholding
/// its denominator hint — the cost-model analogue of
/// `ComparatorOnly` on the priority side. The equivalence tests wrap a
/// model in this to run the identical workload down both time domains and
/// diff the schedules; it has no other behavioural effect.
pub struct ExactOnly<'a>(pub &'a mut dyn CostModel);

impl CostModel for ExactOnly<'_> {
    fn cost(&mut self, sys: &TaskSystem, st: SubtaskRef) -> Rat {
        self.0.cost(sys, st)
    }

    // Deliberately inherits the default `None` hint: no scale, no fast
    // path, every event time an exact `Rat`.
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_taskmodel::{release, TaskId};

    #[test]
    fn full_quantum_is_one() {
        let sys = release::periodic(&[(1, 2)], 4);
        assert_eq!(FullQuantum.cost(&sys, SubtaskRef(0)), Rat::ONE);
    }

    #[test]
    fn fixed_costs_override_default() {
        let sys = release::periodic(&[(1, 2)], 4);
        let mut m = FixedCosts::new(Rat::ONE).with(TaskId(0), 2, Rat::new(1, 2));
        assert_eq!(m.cost(&sys, SubtaskRef(0)), Rat::ONE);
        assert_eq!(m.cost(&sys, SubtaskRef(1)), Rat::new(1, 2));
    }

    #[test]
    fn checked_cost_accepts_valid() {
        assert_eq!(checked_cost(Rat::new(1, 3), SubtaskRef(0)), Rat::new(1, 3));
        assert_eq!(checked_cost(Rat::ONE, SubtaskRef(0)), Rat::ONE);
    }

    #[test]
    fn denominator_hints_cover_emitted_costs() {
        assert_eq!(FullQuantum.denominator_hint(), Some(1));
        assert_eq!(ScaledCost(Rat::new(7, 8)).denominator_hint(), Some(8));
        let m = FixedCosts::new(Rat::new(3, 4)).with(TaskId(0), 1, Rat::new(5, 6));
        assert_eq!(m.denominator_hint(), Some(12));
        // ExactOnly withholds the inner hint by design.
        let mut inner = FullQuantum;
        assert_eq!(ExactOnly(&mut inner).denominator_hint(), None);
    }

    #[test]
    #[should_panic(expected = "must satisfy 0 < c <= 1")]
    fn checked_cost_rejects_zero() {
        let _ = checked_cost(Rat::ZERO, SubtaskRef(0));
    }

    #[test]
    #[should_panic(expected = "must satisfy 0 < c <= 1")]
    fn checked_cost_rejects_over_one() {
        let _ = checked_cost(Rat::new(5, 4), SubtaskRef(0));
    }
}
