//! Shared event-emission plumbing for the simulator drivers.

use pfair_numeric::Rat;
use pfair_obs::{Observer, SchedEvent};
use pfair_taskmodel::{SubtaskRef, TaskSystem};

/// A quantum whose end has not been announced yet:
/// `(completion, proc, subtask, waste)`.
pub(crate) type PendingEnd = (Rat, u32, SubtaskRef, Rat);

/// Emits `QuantumEnd` followed by the deadline verdict for one quantum.
pub(crate) fn emit_end<O: Observer>(
    sys: &TaskSystem,
    st: SubtaskRef,
    proc: u32,
    completion: Rat,
    waste: Rat,
    obs: &mut O,
) {
    if O::ENABLED {
        let s = sys.subtask(st);
        obs.on_event(&SchedEvent::QuantumEnd {
            id: s.id,
            proc,
            completion,
            deadline: s.deadline,
            waste,
        });
        let d = Rat::int(s.deadline);
        if completion > d {
            obs.on_event(&SchedEvent::DeadlineMiss {
                id: s.id,
                completion,
                deadline: s.deadline,
                tardiness: completion - d,
            });
        } else {
            obs.on_event(&SchedEvent::DeadlineHit {
                id: s.id,
                completion,
                deadline: s.deadline,
            });
        }
    }
}

/// Announces every pending quantum end in `(completion, proc)` order and
/// clears the list. Callers invoke this once all pending completions are at
/// or before the stream's current time, keeping event times nondecreasing.
pub(crate) fn flush_ends<O: Observer>(
    sys: &TaskSystem,
    pending: &mut Vec<PendingEnd>,
    obs: &mut O,
) {
    pending.sort_unstable_by_key(|&(completion, proc, _, _)| (completion, proc));
    for &(completion, proc, st, waste) in pending.iter() {
        emit_end(sys, st, proc, completion, waste, obs);
    }
    pending.clear();
}

/// Like [`flush_ends`], but only for quanta completing at or before `now`
/// (staggered batches run at fractional times while quanta may complete
/// after the batch instant).
pub(crate) fn flush_due<O: Observer>(
    sys: &TaskSystem,
    pending: &mut Vec<PendingEnd>,
    now: Rat,
    obs: &mut O,
) {
    let mut due: Vec<PendingEnd> = Vec::new();
    pending.retain(|&end| {
        if end.0 <= now {
            due.push(end);
            false
        } else {
            true
        }
    });
    flush_ends(sys, &mut due, obs);
}
