//! The recorded output of a simulation run.

use pfair_numeric::{Rat, Time};
use pfair_taskmodel::{SubtaskRef, TaskSystem};
use serde::{Deserialize, Serialize};

/// Which quantum model produced a schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantumModel {
    /// Synchronized fixed-size quanta (integral decision times).
    Sfq,
    /// Desynchronized variable-size quanta (rational decision times).
    Dvq,
    /// Staggered fixed-size quanta (per-processor offsets `k/M`).
    Staggered,
    /// Boundary-Fair: fixed-size quanta, decisions at period boundaries
    /// only (integral decision times, non-work-conserving).
    Bf,
    /// Flow-network: per-slot allocations extracted from a saturating max
    /// flow over the PF-window network (integral decision times).
    Flow,
}

impl core::fmt::Display for QuantumModel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            QuantumModel::Sfq => "SFQ",
            QuantumModel::Dvq => "DVQ",
            QuantumModel::Staggered => "staggered",
            QuantumModel::Bf => "BF",
            QuantumModel::Flow => "flow",
        })
    }
}

/// One quantum: a subtask executing on a processor.
///
/// The paper's overloaded schedule function `S(T_i)` (the commencement
/// time of a subtask, §3) is `start`; the actual execution cost `c(T_i)`
/// is `cost`; completion is `start + cost`. `holds_until` records how long
/// the *processor* is unavailable: under SFQ/staggered the quantum runs to
/// its fixed boundary even if the subtask yields early (the non-reclaimed
/// waste the DVQ model eliminates); under DVQ it equals the completion.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The subtask.
    pub st: SubtaskRef,
    /// Processor index in `0..m`.
    pub proc: u32,
    /// Commencement time `S(T_i)`.
    pub start: Time,
    /// Actual execution cost `c(T_i) ∈ (0, 1]`.
    pub cost: Rat,
    /// Time at which the processor becomes available again (`≥ start+cost`).
    pub holds_until: Time,
}

impl Placement {
    /// Completion time `S(T_i) + c(T_i)`.
    #[must_use]
    pub fn completion(&self) -> Time {
        self.start + self.cost
    }

    /// Unused processor time inside this quantum (`holds_until −
    /// completion`); zero under the work-conserving DVQ model.
    #[must_use]
    pub fn waste(&self) -> Rat {
        self.holds_until - self.completion()
    }
}

/// A complete schedule: the placement of every released subtask.
///
/// Built incrementally by the simulators; immutable to consumers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Schedule {
    model: QuantumModel,
    m: u32,
    /// Placements in commencement order (ties in time: ascending proc).
    placements: Vec<Placement>,
    /// SubtaskRef → index into `placements` (every released subtask is
    /// eventually placed; simulators run to completion).
    by_subtask: Vec<u32>,
}

impl Schedule {
    /// Assembles a schedule from raw placements (used by the simulators).
    ///
    /// # Panics
    /// Panics unless every subtask of `sys` is placed exactly once.
    #[must_use]
    pub fn new(
        sys: &TaskSystem,
        model: QuantumModel,
        m: u32,
        mut placements: Vec<Placement>,
    ) -> Schedule {
        placements.sort_by(|a, b| a.start.cmp(&b.start).then(a.proc.cmp(&b.proc)));
        let mut by_subtask = vec![u32::MAX; sys.num_subtasks()];
        for (i, pl) in placements.iter().enumerate() {
            assert!(
                by_subtask[pl.st.idx()] == u32::MAX,
                "subtask {:?} placed twice",
                pl.st
            );
            by_subtask[pl.st.idx()] = i as u32;
        }
        assert!(
            by_subtask.iter().all(|&i| i != u32::MAX),
            "not every subtask was placed"
        );
        Schedule {
            model,
            m,
            placements,
            by_subtask,
        }
    }

    /// The quantum model that produced this schedule.
    #[must_use]
    pub fn model(&self) -> QuantumModel {
        self.model
    }

    /// Number of processors.
    #[must_use]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// All placements, in commencement order.
    #[must_use]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// The placement of a subtask.
    #[must_use]
    pub fn placement(&self, st: SubtaskRef) -> &Placement {
        &self.placements[self.by_subtask[st.idx()] as usize]
    }

    /// Commencement time `S(T_i)`.
    #[must_use]
    pub fn start(&self, st: SubtaskRef) -> Time {
        self.placement(st).start
    }

    /// Completion time of a subtask.
    #[must_use]
    pub fn completion(&self, st: SubtaskRef) -> Time {
        self.placement(st).completion()
    }

    /// Latest completion over the whole schedule (`0` if empty).
    #[must_use]
    pub fn makespan(&self) -> Time {
        self.placements
            .iter()
            .map(Placement::completion)
            .max()
            .unwrap_or(Rat::ZERO)
    }

    /// Placements on one processor, in time order.
    pub fn on_processor(&self, proc: u32) -> impl Iterator<Item = &Placement> {
        self.placements.iter().filter(move |p| p.proc == proc)
    }

    /// The subtasks whose execution overlaps slot `t` (`[t, t+1)`),
    /// i.e. `start < t+1 ∧ completion > t`.
    pub fn executing_in_slot(&self, t: i64) -> impl Iterator<Item = &Placement> {
        let lo = Rat::int(t);
        let hi = Rat::int(t + 1);
        self.placements
            .iter()
            .filter(move |p| p.start < hi && p.completion() > lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_taskmodel::release;

    fn unit_placement(st: u32, proc: u32, start: i64) -> Placement {
        Placement {
            st: SubtaskRef(st),
            proc,
            start: Rat::int(start),
            cost: Rat::ONE,
            holds_until: Rat::int(start + 1),
        }
    }

    #[test]
    fn assemble_and_query() {
        let sys = release::periodic(&[(1, 2)], 4); // two subtasks
        let sched = Schedule::new(
            &sys,
            QuantumModel::Sfq,
            1,
            vec![unit_placement(1, 0, 2), unit_placement(0, 0, 0)],
        );
        assert_eq!(sched.start(SubtaskRef(0)), Rat::int(0));
        assert_eq!(sched.completion(SubtaskRef(1)), Rat::int(3));
        assert_eq!(sched.makespan(), Rat::int(3));
        // Sorted by start.
        assert_eq!(sched.placements()[0].st, SubtaskRef(0));
        assert_eq!(sched.on_processor(0).count(), 2);
        assert_eq!(sched.executing_in_slot(2).count(), 1);
        assert_eq!(sched.executing_in_slot(1).count(), 0);
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn rejects_duplicate_placement() {
        let sys = release::periodic(&[(1, 2)], 4);
        let _ = Schedule::new(
            &sys,
            QuantumModel::Sfq,
            1,
            vec![
                unit_placement(0, 0, 0),
                unit_placement(0, 0, 1),
                unit_placement(1, 0, 2),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "not every subtask")]
    fn rejects_missing_placement() {
        let sys = release::periodic(&[(1, 2)], 4);
        let _ = Schedule::new(&sys, QuantumModel::Sfq, 1, vec![unit_placement(0, 0, 0)]);
    }

    #[test]
    fn waste_accounting() {
        let p = Placement {
            st: SubtaskRef(0),
            proc: 0,
            start: Rat::int(1),
            cost: Rat::new(3, 4),
            holds_until: Rat::int(2),
        };
        assert_eq!(p.completion(), Rat::new(7, 4));
        assert_eq!(p.waste(), Rat::new(1, 4));
    }
}
