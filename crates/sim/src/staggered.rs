//! The staggered model of Holman & Anderson (RTAS 2004).
//!
//! A "slight variant of the SFQ model" designed to reduce bus contention on
//! symmetric multiprocessors: processor `k`'s quantum boundaries are offset
//! by a *fixed* `k/M`, so quantum starting points are "distributed on
//! different processors uniformly over the interval of each quantum". All
//! quanta are still uniform in size (one unit) and the system is still
//! non-work-conserving: a subtask that yields early leaves the rest of its
//! quantum unused, exactly as under SFQ.
//!
//! The model sits between SFQ and DVQ: decisions are desynchronized across
//! processors (like DVQ) but at *fixed* per-processor times with
//! *fixed-size* quanta (like SFQ). The waste/reclamation experiment (E5)
//! runs all three side by side.
//!
//! Like the DVQ loop, this driver is generic over a
//! `TimeDomain`: when the cost model hints its denominator grid, event
//! times run as `QTime` ticks at `lcm(hint, m)` (boundaries live on the
//! `1/m` grid) and bail out losslessly to exact [`Rat`]s on the first cost
//! the scale cannot represent — see the `dvq` module docs for the
//! bail-out contract.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pfair_core::priority::PriorityOrder;
use pfair_numeric::{checked_lcm, Rat, Time};
use pfair_obs::{NoopObserver, Observer, ReadyCause, SchedEvent};
use pfair_taskmodel::{SubtaskRef, TaskSystem};

use crate::cost::{checked_cost, CostModel};
use crate::emit::{flush_due, flush_ends, PendingEnd};
use crate::schedule::{Placement, QuantumModel, Schedule};
use crate::tdomain::{event_span, tick_scale, ExactTimes, TickTimes, TimeDomain};

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Processor `k` reached one of its quantum boundaries.
    Boundary(u32),
    /// A subtask became ready.
    Activate(SubtaskRef),
}

/// Simulates `sys` on `m` processors under the staggered-quantum model.
///
/// Processor `k` makes scheduling decisions at times `k/m, k/m + 1, …` and
/// holds whatever it schedules until its next boundary.
#[must_use]
pub fn simulate_staggered(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
) -> Schedule {
    simulate_staggered_observed(sys, m, order, cost, &mut NoopObserver)
}

/// Hard liveness check at the end of each batch: with nothing ready and no
/// activation in flight, the boundary events would respin forever without
/// placing anything — a lost-event bug this driver must surface loudly
/// (also in release builds) rather than hang on.
fn check_liveness(
    now: Time,
    ready_len: usize,
    pending_activates: usize,
    placed: usize,
    total: usize,
) {
    assert!(
        ready_len > 0 || pending_activates > 0 || placed >= total,
        "staggered driver stuck at {now}: nothing is ready, no activation is \
         pending, yet only {placed}/{total} subtasks are placed (lost \
         readiness: broken predecessor chain or eligible time?)"
    );
}

/// The loop state, generic over the time representation so a tick-tier run
/// can hand its whole progress to the exact tier on a bail. Quantum-end
/// bookkeeping (`pending_ends`) stays in exact `Rat`s in both tiers: it is
/// only read by emission, never by the event heap.
struct StagState<T: Copy + Ord> {
    events: BinaryHeap<Reverse<(T, Event)>>,
    pending_activates: usize,
    ready: Vec<SubtaskRef>,
    placements: Vec<Placement>,
    placed: usize,
    pending_ends: Vec<PendingEnd>,
}

/// A fast-tier abort mid-batch: the instant, the boundaries not yet served
/// (descending, so `pop()` resumes in ascending processor order), idle
/// processors counted so far, the dispatch whose cost was already drawn
/// (never redrawn — RNG streams stay identical), and the migrated state.
struct StagBail {
    now: Rat,
    rest: Vec<u32>,
    idle: u32,
    pending: Option<(SubtaskRef, Rat)>,
    state: StagState<Time>,
}

/// The initial loop state in domain `dom`: every chain head activates at
/// its eligibility time; processor `k`'s first boundary is at `k/m`.
fn seed_stag<D: TimeDomain>(dom: &D, sys: &TaskSystem, m: u32) -> StagState<D::T> {
    let mut events = BinaryHeap::new();
    let mut pending_activates = 0usize;
    for task in sys.tasks() {
        if let Some(head) = sys.task_subtask_refs(task.id).next() {
            let e = sys.subtask(head).eligible;
            let t = dom
                .int(e)
                .expect("seed eligibility is within the pre-checked event span");
            events.push(Reverse((t, Event::Activate(head))));
            pending_activates += 1;
        }
    }
    for k in 0..m {
        let b = dom
            .from_rat(Rat::new(i64::from(k), i64::from(m)))
            .expect("stagger offsets are on the pre-checked 1/m grid");
        events.push(Reverse((b, Event::Boundary(k))));
    }
    StagState {
        events,
        pending_activates,
        ready: Vec::with_capacity(sys.num_tasks()),
        placements: Vec::with_capacity(sys.num_subtasks()),
        placed: 0,
        pending_ends: Vec::new(),
    }
}

/// Lossless state conversion to the exact tier (`to_rat` is total).
fn migrate_stag<D: TimeDomain>(dom: &D, s: &mut StagState<D::T>) -> StagState<Time> {
    StagState {
        events: s
            .events
            .drain()
            .map(|Reverse((t, ev))| Reverse((dom.to_rat(t), ev)))
            .collect(),
        pending_activates: s.pending_activates,
        ready: std::mem::take(&mut s.ready),
        placements: std::mem::take(&mut s.placements),
        placed: s.placed,
        pending_ends: std::mem::take(&mut s.pending_ends),
    }
}

/// A bail-out's mid-batch position: the batch instant, the not-yet-served
/// boundary processors (descending), the idle count so far, and the
/// pending dispatch whose cost was already drawn.
type StagResume = (Rat, Vec<u32>, u32, Option<(SubtaskRef, Rat)>);

/// The borrows one staggered run needs, bundled so the tick and exact
/// tiers can take them in turn.
struct StagLoop<'a, D: TimeDomain, O: Observer> {
    dom: &'a D,
    sys: &'a TaskSystem,
    m: u32,
    order: &'a dyn PriorityOrder,
    cost: &'a mut dyn CostModel,
    obs: &'a mut O,
}

impl<D: TimeDomain, O: Observer> StagLoop<'_, D, O> {
    /// Runs the event loop to completion in this tier's arithmetic, or
    /// bails with the exact-tier state. `resume` re-enters a batch a
    /// previous tier abandoned: its `Tick` and due ends were already
    /// emitted, and the first dispatch reuses the carried-over cost.
    fn run_stag_tier(
        &mut self,
        mut s: StagState<D::T>,
        resume: Option<StagResume>,
    ) -> Result<Schedule, Box<StagBail>> {
        let total = self.sys.num_subtasks();
        // This instant's boundary-crossing processors, reused across slots
        // (descending, served by `pop()`).
        let mut boundaries: Vec<u32> = Vec::with_capacity(self.m as usize);
        if let Some((now_r, rest, idle, pending)) = resume {
            let now = self
                .dom
                .from_rat(now_r)
                .expect("a bail instant is representable in the resuming domain");
            boundaries = rest;
            self.serve_boundaries(&mut s, now, &mut boundaries, idle, pending)?;
            check_liveness(now_r, s.ready.len(), s.pending_activates, s.placed, total);
        }
        while s.placed < total {
            let Some(&Reverse((now, _))) = s.events.peek() else {
                // Boundary events re-arm themselves while work remains, so
                // the queue can only drain if this driver lost one — abort
                // loudly (also in release builds) rather than looping
                // forever on `placed < total`.
                panic!(
                    "staggered event queue drained with only {placed}/{total} subtasks \
                     placed: a Boundary/Activate event was lost",
                    placed = s.placed
                );
            };
            let now_r = self.dom.to_rat(now);
            if O::ENABLED {
                flush_due(self.sys, &mut s.pending_ends, now_r, self.obs);
                self.obs.on_event(&SchedEvent::Tick { at: now_r });
            }
            boundaries.clear();
            while let Some(&Reverse((t, ev))) = s.events.peek() {
                if t != now {
                    break;
                }
                s.events.pop();
                match ev {
                    Event::Boundary(k) => boundaries.push(k),
                    Event::Activate(st) => {
                        s.pending_activates -= 1;
                        if O::ENABLED {
                            let sub = self.sys.subtask(st);
                            let cause = if self.dom.int(sub.eligible) == Some(now) {
                                ReadyCause::Eligibility
                            } else {
                                ReadyCause::Predecessor
                            };
                            self.obs.on_event(&SchedEvent::Ready {
                                id: sub.id,
                                at: now_r,
                                cause,
                            });
                        }
                        s.ready.push(st);
                    }
                }
            }
            // Descending, so `pop()` serves processors in ascending order.
            boundaries.sort_unstable_by(|a, b| b.cmp(a));
            self.serve_boundaries(&mut s, now, &mut boundaries, 0, None)?;
            check_liveness(now_r, s.ready.len(), s.pending_activates, s.placed, total);
        }

        if O::ENABLED {
            flush_ends(self.sys, &mut s.pending_ends, self.obs);
        }

        Ok(Schedule::new(
            self.sys,
            QuantumModel::Staggered,
            self.m,
            s.placements,
        ))
    }

    /// Serves every boundary crossing at `now` in ascending processor
    /// order, then announces residual idleness. Honors the bail-out
    /// contract: each dispatch runs its fallible time conversions *before*
    /// any side effect, so an unrepresentable value aborts with the batch
    /// cleanly splittable (served boundaries are done, the rest carry
    /// over).
    fn serve_boundaries(
        &mut self,
        s: &mut StagState<D::T>,
        now: D::T,
        boundaries: &mut Vec<u32>,
        mut idle_procs: u32,
        mut carried: Option<(SubtaskRef, Rat)>,
    ) -> Result<(), Box<StagBail>> {
        let now_r = self.dom.to_rat(now);
        // Every served boundary re-arms at `now + 1` (and every placement
        // holds until then), so convert it once up front.
        let Some(next_b) = self.dom.add_one(now) else {
            return Err(Box::new(StagBail {
                now: now_r,
                rest: std::mem::take(boundaries),
                idle: idle_procs,
                pending: carried,
                state: migrate_stag(self.dom, s),
            }));
        };
        while let Some(&proc) = boundaries.last() {
            let pick = match carried.take() {
                Some(p) => Some(p),
                None => s
                    .ready
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| self.order.cmp(self.sys, a, b))
                    .map(|(pos, _)| pos)
                    .map(|pos| {
                        let st = s.ready.swap_remove(pos);
                        (st, checked_cost(self.cost.cost(self.sys, st), st))
                    }),
            };
            if let Some((st, c)) = pick {
                // Fallible conversion first: the successor's activation
                // instant `max(eligible, now + c)` is the only event this
                // dispatch pushes at a cost-dependent time.
                let conv = match self.sys.subtask(st).succ {
                    None => Some(None),
                    Some(succ) => self
                        .dom
                        .int(self.sys.subtask(succ).eligible)
                        .and_then(|e| self.dom.add_cost(now, c).map(|done| (e, done)))
                        .map(|(e, done)| Some((succ, e.max(done)))),
                };
                let Some(succ_at) = conv else {
                    return Err(Box::new(StagBail {
                        now: now_r,
                        rest: std::mem::take(boundaries),
                        idle: idle_procs,
                        pending: Some((st, c)),
                        state: migrate_stag(self.dom, s),
                    }));
                };
                boundaries.pop();
                let hold = now_r + Rat::ONE;
                s.placements.push(Placement {
                    st,
                    proc,
                    start: now_r,
                    cost: c,
                    holds_until: hold,
                });
                s.placed += 1;
                if O::ENABLED {
                    let sub = self.sys.subtask(st);
                    self.obs.on_event(&SchedEvent::QuantumStart {
                        id: sub.id,
                        proc,
                        start: now_r,
                        cost: c,
                        holds_until: hold,
                        deadline: sub.deadline,
                        bbit: sub.bbit,
                        group_deadline: sub.group_deadline,
                    });
                    s.pending_ends.push((now_r + c, proc, st, Rat::ONE - c));
                }
                if let Some((succ, at)) = succ_at {
                    s.events.push(Reverse((at, Event::Activate(succ))));
                    s.pending_activates += 1;
                }
            } else {
                boundaries.pop();
                idle_procs += 1;
            }
            // The processor re-examines the world at its next boundary
            // whether or not it scheduled anything.
            if s.placed < self.sys.num_subtasks() {
                s.events.push(Reverse((next_b, Event::Boundary(proc))));
            }
        }
        if O::ENABLED && idle_procs > 0 {
            self.obs.on_event(&SchedEvent::Idle {
                at: now_r,
                procs: idle_procs,
            });
        }
        Ok(())
    }
}

/// [`simulate_staggered`] with a streaming [`Observer`] attached. With
/// [`NoopObserver`] this monomorphizes to exactly [`simulate_staggered`]'s
/// code (every emission site is gated by the compile-time `O::ENABLED`).
/// Picks the time tier like the DVQ driver: tick arithmetic at scale
/// `lcm(hint, m)` when available, exact rationals otherwise — migrating
/// tick → exact mid-run on the first unrepresentable value.
#[must_use]
pub fn simulate_staggered_observed<O: Observer>(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
    obs: &mut O,
) -> Schedule {
    assert!(m >= 1, "need at least one processor");
    // Boundaries live on the 1/m grid, so fold m into the hint.
    let hint = cost
        .denominator_hint()
        .and_then(|d| checked_lcm(d, i64::from(m)));
    let scale = event_span(sys).and_then(|span| tick_scale(hint, span));
    let bail = if let Some(scale) = scale {
        let dom = TickTimes { scale };
        let state = seed_stag(&dom, sys, m);
        let mut fast = StagLoop {
            dom: &dom,
            sys,
            m,
            order,
            cost,
            obs,
        };
        match fast.run_stag_tier(state, None) {
            Ok(sched) => return sched,
            Err(bail) => Some(*bail),
        }
    } else {
        None
    };
    let dom = ExactTimes;
    let (state, resume) = match bail {
        Some(StagBail {
            now,
            rest,
            idle,
            pending,
            state,
        }) => (state, Some((now, rest, idle, pending))),
        None => (seed_stag(&dom, sys, m), None),
    };
    let mut exact = StagLoop {
        dom: &dom,
        sys,
        m,
        order,
        cost,
        obs,
    };
    match exact.run_stag_tier(state, resume) {
        Ok(sched) => sched,
        Err(_) => unreachable!("the exact time domain never bails"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_taskmodel::release;

    use crate::cost::{ExactOnly, FullQuantum, ScaledCost};

    #[test]
    fn boundaries_are_staggered() {
        let sys = release::periodic(&[(1, 2), (1, 2), (1, 2), (1, 2)], 8);
        let sched = simulate_staggered(&sys, 4, &Pd2, &mut FullQuantum);
        for p in sched.placements() {
            // Every start time on processor k is ≡ k/4 (mod 1).
            assert_eq!(
                p.start.fract(),
                Rat::new(i64::from(p.proc), 4),
                "proc {} start {}",
                p.proc,
                p.start
            );
        }
    }

    #[test]
    fn non_work_conserving_waste() {
        let sys = release::periodic(&[(1, 1), (1, 1)], 4);
        let mut half = ScaledCost(Rat::new(1, 2));
        let sched = simulate_staggered(&sys, 2, &Pd2, &mut half);
        for p in sched.placements() {
            assert_eq!(p.waste(), Rat::new(1, 2));
        }
    }

    #[test]
    fn single_processor_matches_sfq_timing() {
        // With m = 1 the stagger offset is 0 and boundaries are integral:
        // identical decisions to SFQ.
        let sys = release::periodic(&[(3, 4), (1, 2)], 8);
        let stag = simulate_staggered(&sys, 1, &Pd2, &mut FullQuantum);
        let sfq = crate::sfq::simulate_sfq(&sys, 1, &Pd2, &mut FullQuantum);
        for (st, _) in sys.iter_refs() {
            assert_eq!(stag.start(st), sfq.start(st));
        }
    }

    #[test]
    fn respects_eligibility_at_fractional_boundaries() {
        // Processor 1 (boundary at 1/2) must not run a subtask eligible at
        // time 1 before time 1; its first chance is 3/2.
        let sys = release::periodic(&[(1, 2)], 4);
        // Subtask 2 of wt 1/2 has r = e = 2.
        let sched = simulate_staggered(&sys, 2, &Pd2, &mut FullQuantum);
        for (st, s) in sys.iter_refs() {
            assert!(sched.start(st) >= Rat::int(s.eligible));
        }
    }

    #[test]
    fn all_subtasks_eventually_run() {
        let sys = release::periodic(&[(1, 3), (2, 5), (1, 2)], 30);
        let sched = simulate_staggered(&sys, 2, &Pd2, &mut FullQuantum);
        assert_eq!(sched.placements().len(), sys.num_subtasks());
    }

    #[test]
    fn tick_times_match_exact_times() {
        // The same workload down both tiers: ScaledCost hints its
        // denominator (tick fast path at lcm(den, m)); ExactOnly withholds
        // it. Schedules must be identical, placement for placement.
        let sys = release::periodic(&[(1, 3), (2, 5), (1, 2)], 30);
        let costs = ScaledCost(Rat::new(3, 4));
        let fast = simulate_staggered(&sys, 3, &Pd2, &mut costs.clone());
        let mut inner = costs;
        let exact = simulate_staggered(&sys, 3, &Pd2, &mut ExactOnly(&mut inner));
        assert_eq!(fast.placements(), exact.placements());
    }

    /// Lies about its grid: hints denominator 2 but emits a cost with
    /// denominator 7 on the `trip`-th draw, forcing a mid-batch bail.
    struct WrongHint {
        draws: usize,
        trip: usize,
    }

    impl CostModel for WrongHint {
        fn cost(&mut self, _sys: &TaskSystem, _st: SubtaskRef) -> Rat {
            self.draws += 1;
            if self.draws == self.trip {
                Rat::new(2, 7)
            } else {
                Rat::new(1, 2)
            }
        }

        fn denominator_hint(&self) -> Option<i64> {
            Some(2)
        }
    }

    #[test]
    fn mid_run_migration_is_invisible() {
        // A wrong denominator hint costs performance only: the run bails
        // to exact arithmetic at the first off-grid cost and the schedule
        // is identical to an all-exact run of the same model.
        let sys = release::periodic(&[(1, 2), (1, 3), (2, 5)], 30);
        for trip in [1usize, 2, 5, 11] {
            let a = simulate_staggered(&sys, 2, &Pd2, &mut WrongHint { draws: 0, trip });
            let mut inner = WrongHint { draws: 0, trip };
            let b = simulate_staggered(&sys, 2, &Pd2, &mut ExactOnly(&mut inner));
            assert_eq!(a.placements(), b.placements(), "trip = {trip}");
        }
    }

    #[test]
    fn stuck_scheduler_panics_with_diagnostics() {
        // The liveness check must fire — with a diagnosable message — on
        // the state a lost Activate event would leave behind: nothing
        // ready, nothing pending, subtasks unplaced. (The public API cannot
        // reach this state precisely because the check guards every batch.)
        let err = std::panic::catch_unwind(|| {
            check_liveness(Rat::new(7, 2), 0, 0, 3, 5);
        })
        .expect_err("stuck state must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("stuck at 7/2"), "got: {msg}");
        assert!(msg.contains("3/5 subtasks"), "got: {msg}");
    }

    #[test]
    fn liveness_check_accepts_live_states() {
        // Ready work, a pending activation, or completion each keep the
        // driver alive; idle gaps between releases must not trip it.
        check_liveness(Rat::int(4), 1, 0, 3, 5);
        check_liveness(Rat::int(4), 0, 2, 3, 5);
        check_liveness(Rat::int(4), 0, 0, 5, 5);
        // End-to-end: a release gap (subtasks at r = 0 and r = 6) makes
        // every intermediate batch boundary-only; the run must still
        // complete rather than being misdiagnosed as stuck.
        let sys = release::periodic(&[(1, 6)], 12);
        let sched = simulate_staggered(&sys, 2, &Pd2, &mut FullQuantum);
        assert_eq!(sched.placements().len(), 2);
        let starts: Vec<i64> = sched.placements().iter().map(|p| p.start.floor()).collect();
        assert_eq!(starts, vec![0, 6]);
    }
}
