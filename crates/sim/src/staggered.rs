//! The staggered model of Holman & Anderson (RTAS 2004).
//!
//! A "slight variant of the SFQ model" designed to reduce bus contention on
//! symmetric multiprocessors: processor `k`'s quantum boundaries are offset
//! by a *fixed* `k/M`, so quantum starting points are "distributed on
//! different processors uniformly over the interval of each quantum". All
//! quanta are still uniform in size (one unit) and the system is still
//! non-work-conserving: a subtask that yields early leaves the rest of its
//! quantum unused, exactly as under SFQ.
//!
//! The model sits between SFQ and DVQ: decisions are desynchronized across
//! processors (like DVQ) but at *fixed* per-processor times with
//! *fixed-size* quanta (like SFQ). The waste/reclamation experiment (E5)
//! runs all three side by side.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pfair_core::priority::PriorityOrder;
use pfair_numeric::{Rat, Time};
use pfair_obs::{NoopObserver, Observer, ReadyCause, SchedEvent};
use pfair_taskmodel::{SubtaskRef, TaskSystem};

use crate::cost::{checked_cost, CostModel};
use crate::emit::{flush_due, flush_ends, PendingEnd};
use crate::schedule::{Placement, QuantumModel, Schedule};

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Processor `k` reached one of its quantum boundaries.
    Boundary(u32),
    /// A subtask became ready.
    Activate(SubtaskRef),
}

/// Simulates `sys` on `m` processors under the staggered-quantum model.
///
/// Processor `k` makes scheduling decisions at times `k/m, k/m + 1, …` and
/// holds whatever it schedules until its next boundary.
#[must_use]
pub fn simulate_staggered(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
) -> Schedule {
    simulate_staggered_observed(sys, m, order, cost, &mut NoopObserver)
}

/// Hard liveness check at the end of each batch: with nothing ready and no
/// activation in flight, the boundary events would respin forever without
/// placing anything — a lost-event bug this driver must surface loudly
/// (also in release builds) rather than hang on.
fn check_liveness(
    now: Time,
    ready_len: usize,
    pending_activates: usize,
    placed: usize,
    total: usize,
) {
    assert!(
        ready_len > 0 || pending_activates > 0 || placed >= total,
        "staggered driver stuck at {now}: nothing is ready, no activation is \
         pending, yet only {placed}/{total} subtasks are placed (lost \
         readiness: broken predecessor chain or eligible time?)"
    );
}

/// [`simulate_staggered`] with a streaming [`Observer`] attached. With
/// [`NoopObserver`] this monomorphizes to exactly [`simulate_staggered`]'s
/// code (every emission site is gated by the compile-time `O::ENABLED`).
#[must_use]
pub fn simulate_staggered_observed<O: Observer>(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
    obs: &mut O,
) -> Schedule {
    assert!(m >= 1, "need at least one processor");
    let total = sys.num_subtasks();
    let mut placements = Vec::with_capacity(total);

    let mut events: BinaryHeap<Reverse<(Time, Event)>> = BinaryHeap::new();
    let mut pending_activates = 0usize;
    for task in sys.tasks() {
        if let Some(head) = sys.task_subtask_refs(task.id).next() {
            let e = sys.subtask(head).eligible;
            events.push(Reverse((Time::int(e), Event::Activate(head))));
            pending_activates += 1;
        }
    }
    for k in 0..m {
        events.push(Reverse((
            Rat::new(i64::from(k), i64::from(m)),
            Event::Boundary(k),
        )));
    }

    let mut ready: Vec<SubtaskRef> = Vec::with_capacity(sys.num_tasks());
    let mut placed = 0usize;
    // Observability state: quanta whose ends are still unannounced.
    let mut pending_ends: Vec<PendingEnd> = Vec::new();
    // This instant's boundary-crossing processors, reused across slots.
    let mut boundaries: Vec<u32> = Vec::with_capacity(m as usize);

    while placed < total {
        let Some(&Reverse((now, _))) = events.peek() else {
            // Boundary events re-arm themselves while work remains, so the
            // queue can only drain if this driver lost one — abort loudly
            // (also in release builds) rather than looping forever on
            // `placed < total`.
            panic!(
                "staggered event queue drained with only {placed}/{total} subtasks \
                 placed: a Boundary/Activate event was lost"
            );
        };
        if O::ENABLED {
            flush_due(sys, &mut pending_ends, now, obs);
            obs.on_event(&SchedEvent::Tick { at: now });
        }
        boundaries.clear();
        while let Some(&Reverse((t, ev))) = events.peek() {
            if t != now {
                break;
            }
            events.pop();
            match ev {
                Event::Boundary(k) => boundaries.push(k),
                Event::Activate(st) => {
                    pending_activates -= 1;
                    if O::ENABLED {
                        let s = sys.subtask(st);
                        let cause = if now == Time::int(s.eligible) {
                            ReadyCause::Eligibility
                        } else {
                            ReadyCause::Predecessor
                        };
                        obs.on_event(&SchedEvent::Ready {
                            id: s.id,
                            at: now,
                            cause,
                        });
                    }
                    ready.push(st);
                }
            }
        }
        boundaries.sort_unstable();

        let mut idle_procs = 0u32;
        for &proc in &boundaries {
            if let Some((pos, _)) = ready
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| order.cmp(sys, a, b))
            {
                let st = ready.swap_remove(pos);
                let c = checked_cost(cost.cost(sys, st), st);
                let next_boundary = now + Rat::ONE;
                placements.push(Placement {
                    st,
                    proc,
                    start: now,
                    cost: c,
                    holds_until: next_boundary,
                });
                placed += 1;
                if O::ENABLED {
                    let s = sys.subtask(st);
                    obs.on_event(&SchedEvent::QuantumStart {
                        id: s.id,
                        proc,
                        start: now,
                        cost: c,
                        holds_until: next_boundary,
                        deadline: s.deadline,
                        bbit: s.bbit,
                        group_deadline: s.group_deadline,
                    });
                    pending_ends.push((now + c, proc, st, Rat::ONE - c));
                }
                if let Some(succ) = sys.subtask(st).succ {
                    let act = Time::int(sys.subtask(succ).eligible).max(now + c);
                    events.push(Reverse((act, Event::Activate(succ))));
                    pending_activates += 1;
                }
            } else {
                idle_procs += 1;
            }
            // The processor re-examines the world at its next boundary
            // whether or not it scheduled anything.
            if placed < total {
                events.push(Reverse((now + Rat::ONE, Event::Boundary(proc))));
            }
        }
        if O::ENABLED && idle_procs > 0 {
            obs.on_event(&SchedEvent::Idle {
                at: now,
                procs: idle_procs,
            });
        }
        check_liveness(now, ready.len(), pending_activates, placed, total);
    }

    if O::ENABLED {
        flush_ends(sys, &mut pending_ends, obs);
    }

    Schedule::new(sys, QuantumModel::Staggered, m, placements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_taskmodel::release;

    use crate::cost::{FullQuantum, ScaledCost};

    #[test]
    fn boundaries_are_staggered() {
        let sys = release::periodic(&[(1, 2), (1, 2), (1, 2), (1, 2)], 8);
        let sched = simulate_staggered(&sys, 4, &Pd2, &mut FullQuantum);
        for p in sched.placements() {
            // Every start time on processor k is ≡ k/4 (mod 1).
            assert_eq!(
                p.start.fract(),
                Rat::new(i64::from(p.proc), 4),
                "proc {} start {}",
                p.proc,
                p.start
            );
        }
    }

    #[test]
    fn non_work_conserving_waste() {
        let sys = release::periodic(&[(1, 1), (1, 1)], 4);
        let mut half = ScaledCost(Rat::new(1, 2));
        let sched = simulate_staggered(&sys, 2, &Pd2, &mut half);
        for p in sched.placements() {
            assert_eq!(p.waste(), Rat::new(1, 2));
        }
    }

    #[test]
    fn single_processor_matches_sfq_timing() {
        // With m = 1 the stagger offset is 0 and boundaries are integral:
        // identical decisions to SFQ.
        let sys = release::periodic(&[(3, 4), (1, 2)], 8);
        let stag = simulate_staggered(&sys, 1, &Pd2, &mut FullQuantum);
        let sfq = crate::sfq::simulate_sfq(&sys, 1, &Pd2, &mut FullQuantum);
        for (st, _) in sys.iter_refs() {
            assert_eq!(stag.start(st), sfq.start(st));
        }
    }

    #[test]
    fn respects_eligibility_at_fractional_boundaries() {
        // Processor 1 (boundary at 1/2) must not run a subtask eligible at
        // time 1 before time 1; its first chance is 3/2.
        let sys = release::periodic(&[(1, 2)], 4);
        // Subtask 2 of wt 1/2 has r = e = 2.
        let sched = simulate_staggered(&sys, 2, &Pd2, &mut FullQuantum);
        for (st, s) in sys.iter_refs() {
            assert!(sched.start(st) >= Rat::int(s.eligible));
        }
    }

    #[test]
    fn all_subtasks_eventually_run() {
        let sys = release::periodic(&[(1, 3), (2, 5), (1, 2)], 30);
        let sched = simulate_staggered(&sys, 2, &Pd2, &mut FullQuantum);
        assert_eq!(sched.placements().len(), sys.num_subtasks());
    }

    #[test]
    fn stuck_scheduler_panics_with_diagnostics() {
        // The liveness check must fire — with a diagnosable message — on
        // the state a lost Activate event would leave behind: nothing
        // ready, nothing pending, subtasks unplaced. (The public API cannot
        // reach this state precisely because the check guards every batch.)
        let err = std::panic::catch_unwind(|| {
            check_liveness(Rat::new(7, 2), 0, 0, 3, 5);
        })
        .expect_err("stuck state must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("stuck at 7/2"), "got: {msg}");
        assert!(msg.contains("3/5 subtasks"), "got: {msg}");
    }

    #[test]
    fn liveness_check_accepts_live_states() {
        // Ready work, a pending activation, or completion each keep the
        // driver alive; idle gaps between releases must not trip it.
        check_liveness(Rat::int(4), 1, 0, 3, 5);
        check_liveness(Rat::int(4), 0, 2, 3, 5);
        check_liveness(Rat::int(4), 0, 0, 5, 5);
        // End-to-end: a release gap (subtasks at r = 0 and r = 6) makes
        // every intermediate batch boundary-only; the run must still
        // complete rather than being misdiagnosed as stuck.
        let sys = release::periodic(&[(1, 6)], 12);
        let sched = simulate_staggered(&sys, 2, &Pd2, &mut FullQuantum);
        assert_eq!(sched.placements().len(), 2);
        let starts: Vec<i64> = sched.placements().iter().map(|p| p.start.floor()).collect();
        assert_eq!(starts, vec![0, 6]);
    }
}
