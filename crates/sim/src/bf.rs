//! The Boundary-Fair (BF) engine: allocation decisions at period
//! boundaries only.
//!
//! Pfair schedulers decide every slot; BF (Zhu, Mossé & Melhem; the
//! DP-Fair family follows the same shape) decides only at **period
//! boundaries** — the distinct multiples of task periods — and hands each
//! task a whole number of quanta per boundary interval. Between boundaries
//! the per-task allocations are laid out by McNaughton's wrap-around rule,
//! so the number of scheduling decisions (and hence context switches)
//! collapses from one per slot to one per boundary.
//!
//! At each boundary `b` with successor `b'` (interval length `L = b' − b`),
//! every task `T` with remaining units receives:
//!
//! * **mandatory** units `m_T = max(0, ⌊PW_T⌋)` where
//!   `PW_T = fluid_T(b') − alloc_T` is the pending work against the fluid
//!   allocation `fluid_T(t) = min(wt(T)·t, n_T)` (`n_T` = released units),
//!   computed in exact rational arithmetic; and
//! * at most one **optional** unit, granted from the interval's spare
//!   capacity `m·L − Σ m_T` in urgency order: largest fractional remainder
//!   first, ties to the earlier next own-period boundary, then task id.
//!
//! Allocations are exact at each task's own period boundaries (the
//! boundary lag lies in `(−1, 1)` and fluid is integral there), so every
//! **job** deadline is met on feasible systems. Subtask (Pfair) windows are
//! *not* respected — BF legitimately runs a unit earlier or later than its
//! Pfair window — which is exactly the trade the family makes for fewer
//! preemptions; the conformance suite therefore checks BF schedules
//! against its own boundary-conservation invariant, never against the
//! Pfair structural bank.
//!
//! BF is defined for synchronous periodic systems (subtasks `1..n`, no IS
//! offsets, no early releasing). [`simulate_bf`] fails fast on anything
//! else; use [`is_boundary_periodic`] to gate.
//!
//! Like SFQ, BF is slot-based and non-work-conserving: the *schedule* is
//! independent of the cost model; only completions and waste depend on it.

use pfair_numeric::Rat;
use pfair_obs::{NoopObserver, Observer};
use pfair_taskmodel::{SubtaskRef, TaskId, TaskSystem};

use crate::cost::CostModel;
use crate::schedule::{QuantumModel, Schedule};
use crate::slotplay::{replay, Cell};

/// Whether `sys` is a synchronous periodic system — the class BF is
/// defined on: every task released exactly subtasks `1..n` with zero IS
/// offset and no early releasing.
#[must_use]
pub fn is_boundary_periodic(sys: &TaskSystem) -> bool {
    sys.tasks().iter().all(|task| {
        sys.task_subtasks(task.id)
            .iter()
            .enumerate()
            .all(|(k, s)| s.id.index == (k as u64) + 1 && s.theta == 0 && s.eligible == s.release)
    })
}

/// Simulates `sys` on `m` processors under the Boundary-Fair rules.
///
/// # Panics
/// Panics unless `m ≥ 1` and `sys` is synchronous periodic
/// ([`is_boundary_periodic`]), or if an interval's mandatory demand
/// exceeds its capacity (impossible on feasible systems; kept as a hard
/// diagnostic rather than a silent overrun).
#[must_use]
pub fn simulate_bf(sys: &TaskSystem, m: u32, cost: &mut dyn CostModel) -> Schedule {
    simulate_bf_observed(sys, m, cost, &mut NoopObserver)
}

/// [`simulate_bf`] with a streaming [`Observer`] attached. With
/// [`NoopObserver`] this monomorphizes to exactly [`simulate_bf`]'s code.
#[must_use]
pub fn simulate_bf_observed<O: Observer>(
    sys: &TaskSystem,
    m: u32,
    cost: &mut dyn CostModel,
    obs: &mut O,
) -> Schedule {
    assert!(m >= 1, "need at least one processor");
    assert!(
        is_boundary_periodic(sys),
        "BF is defined for synchronous periodic systems: every task must \
         release subtasks 1..n with zero IS offset and no early releasing \
         (got a GIS/IS/early-release system; use a Pfair engine instead)"
    );
    let cells = bf_slot_table(sys, m);
    replay(sys, QuantumModel::Bf, m, cells, cost, obs)
}

/// The sorted distinct period boundaries of `sys`, from `0` through the
/// last boundary at which any task still has fluid demand.
///
/// For a task with `n` released units and reduced weight `e/p`, fluid
/// demand ends at `n·p/e`, so its own boundaries are `p, 2p, …, ⌈n/e⌉·p`.
#[must_use]
pub fn bf_boundaries(sys: &TaskSystem) -> Vec<i64> {
    let mut bounds = vec![0i64];
    for task in sys.tasks() {
        let n = sys.task_subtasks(task.id).len() as i64;
        let (e, p) = (task.weight.e(), task.weight.p());
        let jobs = pfair_numeric::ceil_div(n, e);
        for k in 1..=jobs {
            bounds.push(k * p);
        }
    }
    bounds.sort_unstable();
    bounds.dedup();
    bounds
}

/// Computes the full BF slot table: per boundary interval, mandatory +
/// optional units per task, laid out by McNaughton wrap-around.
fn bf_slot_table(sys: &TaskSystem, m: u32) -> Vec<Cell> {
    let n_tasks = sys.num_tasks();
    let bounds = bf_boundaries(sys);
    // Units already allocated per task, and the next unscheduled subtask.
    let mut alloc: Vec<i64> = vec![0; n_tasks];
    let mut cursor: Vec<u32> = (0..n_tasks)
        .map(|k| sys.task_span(TaskId(k as u32)).0)
        .collect();
    let mut cells: Vec<Cell> = Vec::with_capacity(sys.num_subtasks());
    // Per-interval allocation `a[k]` and the optional-unit candidates
    // `(fractional remainder, next own boundary, task)`.
    let mut a: Vec<i64> = vec![0; n_tasks];
    let mut candidates: Vec<(Rat, i64, u32)> = Vec::new();

    for w in bounds.windows(2) {
        let (b, b2) = (w[0], w[1]);
        let len = b2 - b;
        a.iter_mut().for_each(|x| *x = 0);
        candidates.clear();
        let mut mandatory_total = 0i64;
        for (k, task) in sys.tasks().iter().enumerate() {
            let n = sys.task_subtasks(task.id).len() as i64;
            if alloc[k] >= n {
                continue;
            }
            let fluid = (task.weight.as_rat() * Rat::int(b2)).min(Rat::int(n));
            let pw = fluid - Rat::int(alloc[k]);
            if !pw.is_positive() {
                continue;
            }
            let mand = pw.floor();
            assert!(
                mand <= len,
                "BF: task {:?} mandatory {mand} exceeds interval [{b}, {b2})",
                task.id
            );
            a[k] = mand;
            mandatory_total += mand;
            let frac = pw - Rat::int(mand);
            if frac.is_positive() && mand < len {
                let next_own = (b / task.weight.p() + 1) * task.weight.p();
                candidates.push((frac, next_own, k as u32));
            }
        }
        let capacity = i64::from(m) * len;
        assert!(
            mandatory_total <= capacity,
            "BF: interval [{b}, {b2}) over-committed: mandatory {mandatory_total} \
             > capacity {capacity} (the system is infeasible on {m} processors)"
        );
        let spare = capacity - mandatory_total;
        // Urgency order: largest fractional remainder, then earliest next
        // own boundary, then task id — all exact comparisons.
        candidates.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
        for &(_, _, k) in candidates.iter().take(spare as usize) {
            a[k as usize] += 1;
        }

        // McNaughton wrap-around: concatenate the per-task allocations into
        // one tape of `Σ a[k] ≤ m·len` unit cells and cut it every `len`
        // cells, one strip per processor. Each task's `a[k] ≤ len`
        // consecutive cells land in distinct slots, so a task never runs on
        // two processors in the same slot; assigning its subtasks in index
        // order to its occupied slots sorted ascending keeps precedence.
        let mut tape = 0i64;
        for k in 0..n_tasks {
            if a[k] == 0 {
                continue;
            }
            let mut mine: Vec<(i64, u32)> = (0..a[k])
                .map(|j| {
                    let cell = tape + j;
                    (b + cell % len, (cell / len) as u32)
                })
                .collect();
            tape += a[k];
            mine.sort_unstable();
            for (slot, proc) in mine {
                let st = SubtaskRef(cursor[k]);
                cursor[k] += 1;
                alloc[k] += 1;
                cells.push(Cell { slot, proc, st });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_taskmodel::release;
    use proptest::prelude::*;

    use crate::cost::{FullQuantum, ScaledCost};

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    /// All job deadlines met: for every task with weight `e/p`, the `j`-th
    /// job's units (indices `(j−1)e+1 ..= je`) complete by `j·p`.
    fn assert_job_deadlines_met(sys: &TaskSystem, sched: &Schedule) {
        for task in sys.tasks() {
            let (e, p) = (task.weight.e(), task.weight.p());
            for (k, st) in sys.task_subtask_refs(task.id).enumerate() {
                let job = (k as i64) / e + 1;
                let job_deadline = job * p;
                assert!(
                    sched.placement(st).holds_until <= Rat::int(job_deadline),
                    "task {:?} unit {} past its job deadline {job_deadline}",
                    task.id,
                    k + 1,
                );
            }
        }
    }

    fn assert_capacity_respected(sys: &TaskSystem, sched: &Schedule, m: u32) {
        let horizon = sched.makespan().ceil();
        for t in 0..horizon {
            assert!(sched.executing_in_slot(t).count() <= m as usize);
            // No task on two processors in one slot.
            let mut tasks: Vec<u32> = sched
                .executing_in_slot(t)
                .map(|pl| sys.subtask(pl.st).id.task.0)
                .collect();
            tasks.sort_unstable();
            tasks.dedup();
            assert_eq!(
                tasks.len(),
                sched.executing_in_slot(t).count(),
                "intra-task parallelism in slot {t}"
            );
        }
    }

    #[test]
    fn boundaries_of_fig2() {
        let sys = fig2_system();
        assert_eq!(bf_boundaries(&sys), vec![0, 2, 4, 6]);
    }

    #[test]
    fn fig2_bf_meets_all_job_deadlines() {
        let sys = fig2_system();
        let sched = simulate_bf(&sys, 2, &mut FullQuantum);
        assert_job_deadlines_met(&sys, &sched);
        assert_capacity_respected(&sys, &sched, 2);
    }

    #[test]
    fn allocation_exact_at_own_boundaries() {
        // At every multiple of a task's period, the units it has received
        // equal its fluid allocation exactly.
        let sys = release::periodic(&[(2, 5), (1, 2), (3, 10), (1, 5)], 10);
        let sched = simulate_bf(&sys, 2, &mut FullQuantum);
        for task in sys.tasks() {
            let p = task.weight.p();
            let e = task.weight.e();
            let mut bound = p;
            while bound <= 10 {
                let got = sys
                    .task_subtask_refs(task.id)
                    .filter(|&st| sched.placement(st).holds_until <= Rat::int(bound))
                    .count() as i64;
                assert_eq!(
                    got,
                    bound / p * e,
                    "task {:?} allocation at boundary {bound}",
                    task.id
                );
                bound += p;
            }
        }
    }

    #[test]
    fn full_utilization_hyperperiod_is_tight() {
        // U = 2 on m = 2: every slot of the hyperperiod must be full and
        // every job deadline met.
        let sys = release::periodic(&[(1, 2), (1, 3), (1, 6), (2, 2)], 6);
        assert_eq!(sys.utilization(), Rat::int(2));
        let sched = simulate_bf(&sys, 2, &mut FullQuantum);
        assert_job_deadlines_met(&sys, &sched);
        for t in 0..6 {
            assert_eq!(sched.executing_in_slot(t).count(), 2, "slot {t} not full");
        }
    }

    #[test]
    fn schedule_independent_of_cost_model() {
        let sys = fig2_system();
        let full = simulate_bf(&sys, 2, &mut FullQuantum);
        let scaled = simulate_bf(&sys, 2, &mut ScaledCost(Rat::new(1, 3)));
        for (x, y) in full.placements().iter().zip(scaled.placements()) {
            assert_eq!(x.st, y.st);
            assert_eq!(x.start, y.start);
            assert_eq!(x.proc, y.proc);
        }
        assert_eq!(scaled.placements()[0].waste(), Rat::new(2, 3));
    }

    #[test]
    fn partial_last_job_is_still_placed() {
        // Horizon not a multiple of the period: the trailing partial job's
        // units are all placed by the final boundary.
        let sys = release::periodic(&[(2, 3)], 4);
        let sched = simulate_bf(&sys, 1, &mut FullQuantum);
        assert_eq!(sched.placements().len(), sys.num_subtasks());
        assert_capacity_respected(&sys, &sched, 1);
    }

    #[test]
    #[should_panic(expected = "synchronous periodic")]
    fn rejects_non_periodic_systems() {
        // Shift windows but not eligibility: an IS offset with early
        // releasing, outside BF's domain.
        let sys = release::periodic(&[(1, 2)], 4).shifted(1, 0);
        let _ = simulate_bf(&sys, 1, &mut FullQuantum);
    }

    proptest! {
        /// Random periodic systems at or below `⌈U⌉ ≤ 4` processors: BF
        /// never trips its capacity asserts, meets every job deadline,
        /// and respects per-slot capacity and task exclusivity.
        #[test]
        fn prop_bf_meets_job_deadlines(
            raw in proptest::collection::vec((1i64..=8, 1i64..=8), 1..5)
        ) {
            let weights: Vec<(i64, i64)> =
                raw.iter().map(|&(a, p)| (a.min(p), p)).collect();
            let hyper = weights
                .iter()
                .fold(1i64, |acc, &(_, p)| pfair_numeric::lcm(acc, p));
            let sys = release::periodic(&weights, hyper);
            let u = sys.utilization();
            let m = u32::try_from(u.ceil().max(1)).expect("small m");
            prop_assume!(m <= 4);
            let sched = simulate_bf(&sys, m, &mut FullQuantum);
            assert_job_deadlines_met(&sys, &sched);
            assert_capacity_respected(&sys, &sched, m);
        }
    }

    #[test]
    fn randomized_periodic_soak() {
        // A deterministic sweep over mixed-weight systems at and below full
        // utilization: BF must meet every job deadline, respect capacity,
        // and never trip its interval asserts.
        let menus: &[&[(i64, i64)]] = &[
            &[(1, 2), (1, 3), (1, 6)],
            &[(3, 4), (2, 3), (5, 12), (1, 12)],
            &[(1, 5), (2, 5), (3, 5), (4, 5)],
            &[(7, 8), (5, 6), (1, 8), (1, 3)],
            &[(2, 7), (3, 7), (5, 7), (4, 7), (6, 7)],
            &[(1, 10), (9, 10), (1, 2), (1, 2)],
        ];
        for (mi, weights) in menus.iter().enumerate() {
            let hyper = weights
                .iter()
                .fold(1i64, |acc, &(_, p)| pfair_numeric::lcm(acc, p));
            let sys = release::periodic(weights, 2 * hyper);
            let u = sys.utilization();
            let m = u32::try_from(u.ceil().max(1)).expect("small m");
            let sched = simulate_bf(&sys, m, &mut FullQuantum);
            assert_job_deadlines_met(&sys, &sched);
            assert_capacity_respected(&sys, &sched, m);
            assert!(mi < menus.len());
        }
    }
}
