//! Multiprocessor schedule simulators for the three quantum models the
//! paper discusses.
//!
//! * [`sfq`] — the **SFQ model** (synchronized, fixed-size quanta): all
//!   processors make scheduling decisions at integral slot boundaries; a
//!   subtask that yields early leaves the rest of its quantum unused
//!   (non-work-conserving). Drives any [`pfair_core::PriorityOrder`] or the
//!   paper's PD^B procedure.
//! * [`dvq`] — the **DVQ model** (desynchronized, variable-size quanta):
//!   event-driven; a processor whose subtask completes at any rational time
//!   immediately begins a new quantum with the highest-priority *ready*
//!   subtask (work-conserving). This is where the paper's priority
//!   inversions arise.
//! * [`staggered`] — the staggered model of Holman & Anderson: fixed-size
//!   quanta whose boundaries on processor `k` are offset by `k/M`;
//!   synchronized but not aligned, still non-work-conserving.
//!
//! All simulators consume a [`pfair_taskmodel::TaskSystem`] plus a
//! [`cost::CostModel`] assigning each subtask its *actual*
//! execution cost `c(T_i) ∈ (0, 1]`, and produce a [`Schedule`] — the
//! record of every placement, from which `pfair-analysis` computes
//! tardiness, validity, blocking events, and waste.
//!
//! # Determinism
//!
//! Every simulator is deterministic given its inputs: ties inside priority
//! orders are pinned by `(task, index)`, processors are assigned in
//! ascending index order, and simultaneous events are drained in one batch
//! before any assignment. Reproducing the paper's figures depends on this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod dvq;
mod emit;
pub mod schedule;
pub mod sfq;
pub mod staggered;
mod tdomain;

pub use cost::{CostModel, ExactOnly, FixedCosts, FullQuantum, ScaledCost};
pub use dvq::{simulate_dvq, simulate_dvq_observed};
pub use schedule::{Placement, QuantumModel, Schedule};
pub use sfq::{
    run_sfq_observed, simulate_sfq, simulate_sfq_affine, simulate_sfq_affine_observed,
    simulate_sfq_observed, simulate_sfq_pdb, simulate_sfq_pdb_instrumented,
    simulate_sfq_pdb_observed, simulate_sfq_pdb_with, AffinityMode, PdbSlotStats, SfqPolicy,
};
pub use staggered::{simulate_staggered, simulate_staggered_observed};
