//! Multiprocessor schedule simulators for the three quantum models the
//! paper discusses.
//!
//! * [`sfq`] — the **SFQ model** (synchronized, fixed-size quanta): all
//!   processors make scheduling decisions at integral slot boundaries; a
//!   subtask that yields early leaves the rest of its quantum unused
//!   (non-work-conserving). Drives any [`pfair_core::PriorityOrder`] or the
//!   paper's PD^B procedure.
//! * [`dvq`] — the **DVQ model** (desynchronized, variable-size quanta):
//!   event-driven; a processor whose subtask completes at any rational time
//!   immediately begins a new quantum with the highest-priority *ready*
//!   subtask (work-conserving). This is where the paper's priority
//!   inversions arise.
//! * [`staggered`] — the staggered model of Holman & Anderson: fixed-size
//!   quanta whose boundaries on processor `k` are offset by `k/M`;
//!   synchronized but not aligned, still non-work-conserving.
//!
//! Two further engine *families* compete with the Pfair variants under the
//! same conformance roof (both slot-based, replayed through the shared
//! `TimeDomain`-generic driver in `slotplay`):
//!
//! * [`bf`] — **Boundary-Fair** scheduling (Zhu/Mossé/Melhem, DP-Fair):
//!   allocation decisions only at period boundaries, McNaughton wrap-around
//!   layout in between. Meets every *job* deadline on feasible periodic
//!   systems while making far fewer scheduling decisions than any per-slot
//!   Pfair scheduler — at the price of ignoring Pfair subtask windows.
//! * [`flow`] — **flow-network** scheduling (Cho & Easwaran): per-slot
//!   allocations extracted from a saturating Dinic max flow over the
//!   PF-window network, patched incrementally task by task. Window-valid
//!   and zero-tardiness on feasible systems.
//!
//! All simulators consume a [`pfair_taskmodel::TaskSystem`] plus a
//! [`cost::CostModel`] assigning each subtask its *actual*
//! execution cost `c(T_i) ∈ (0, 1]`, and produce a [`Schedule`] — the
//! record of every placement, from which `pfair-analysis` computes
//! tardiness, validity, blocking events, and waste.
//!
//! # Determinism
//!
//! Every simulator is deterministic given its inputs: ties inside priority
//! orders are pinned by `(task, index)`, processors are assigned in
//! ascending index order, and simultaneous events are drained in one batch
//! before any assignment. Reproducing the paper's figures depends on this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bf;
pub mod cost;
pub mod dvq;
mod emit;
pub mod flow;
pub mod schedule;
pub mod sfq;
mod slotplay;
pub mod staggered;
mod tdomain;

pub use bf::{bf_boundaries, is_boundary_periodic, simulate_bf, simulate_bf_observed};
pub use cost::{CostModel, ExactOnly, FixedCosts, FullQuantum, ScaledCost};
pub use dvq::{simulate_dvq, simulate_dvq_observed};
pub use flow::{simulate_flow, simulate_flow_observed};
pub use schedule::{Placement, QuantumModel, Schedule};
pub use sfq::{
    run_sfq_observed, simulate_sfq, simulate_sfq_affine, simulate_sfq_affine_observed,
    simulate_sfq_observed, simulate_sfq_pdb, simulate_sfq_pdb_instrumented,
    simulate_sfq_pdb_observed, simulate_sfq_pdb_with, AffinityMode, PdbSlotStats, SfqPolicy,
};
pub use slotplay::replay_events;
pub use staggered::{simulate_staggered, simulate_staggered_observed};
