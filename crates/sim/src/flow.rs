//! The flow-network engine: per-slot allocations from a Dinic max flow.
//!
//! Cho & Easwaran model optimal multiprocessor scheduling of unit-cost
//! subtasks as a bipartite flow problem: `source → subtask` (capacity 1),
//! `subtask → (task, slot)` for every slot in the subtask's PF-window
//! (capacity 1, so a task never runs twice in one slot), `(task, slot) →
//! slot` (capacity 1) and `slot → sink` (capacity `m`). A saturating
//! integral max flow *is* a valid schedule: the unit edges carrying flow
//! name each subtask's slot, and Dinic on unit-capacity bipartite graphs
//! returns integral flow by construction.
//!
//! The engine builds this network **deterministically** (dense,
//! insertion-ordered ids — unlike the schedulability oracle in
//! `pfair-analysis`, whose witness assignment hashes and is only stable in
//! its boolean verdict) and solves it *incrementally*: each task's demand
//! is patched into the graph and re-augmented via
//! [`FlowNetwork::max_flow`]'s residual state, rather than re-solving from
//! scratch — the patching workflow the maxflow crate documents.
//!
//! Every placement lands inside its PF-window, so on feasible systems the
//! extracted schedule has zero tardiness and — unlike BF — satisfies the
//! Pfair window discipline. Like all slot engines it is non-work-conserving
//! and its schedule is independent of the cost model.

use pfair_maxflow::{EdgeId, FlowNetwork};
use pfair_obs::{NoopObserver, Observer};
use pfair_taskmodel::{SubtaskRef, TaskSystem};

use crate::cost::CostModel;
use crate::schedule::{QuantumModel, Schedule};
use crate::slotplay::{replay, Cell};

/// Simulates `sys` on `m` processors by extracting the schedule from a
/// saturating max flow over the PF-window network.
///
/// # Panics
/// Panics unless `m ≥ 1` and all releases are nonnegative, or if the flow
/// does not saturate (the system is infeasible on `m` processors — the
/// campaign generators filter to `U ≤ m`, where saturation is the
/// classical feasibility result this engine rests on).
#[must_use]
pub fn simulate_flow(sys: &TaskSystem, m: u32, cost: &mut dyn CostModel) -> Schedule {
    simulate_flow_observed(sys, m, cost, &mut NoopObserver)
}

/// [`simulate_flow`] with a streaming [`Observer`] attached. With
/// [`NoopObserver`] this monomorphizes to exactly [`simulate_flow`]'s code.
#[must_use]
pub fn simulate_flow_observed<O: Observer>(
    sys: &TaskSystem,
    m: u32,
    cost: &mut dyn CostModel,
    obs: &mut O,
) -> Schedule {
    assert!(m >= 1, "need at least one processor");
    let cells = flow_slot_table(sys, m);
    replay(sys, QuantumModel::Flow, m, cells, cost, obs)
}

/// Solves the PF-window flow network and extracts the slot table.
fn flow_slot_table(sys: &TaskSystem, m: u32) -> Vec<Cell> {
    let n = sys.num_subtasks();
    if n == 0 {
        return Vec::new();
    }
    let horizon = sys.max_deadline();

    // Deterministic node layout: source, the subtasks, each task's
    // (task, slot) exclusivity nodes over its own [min release, max
    // deadline) range, the slots, the sink.
    let n_tasks = sys.num_tasks();
    let mut ts_base = vec![0usize; n_tasks];
    let mut task_lo = vec![0i64; n_tasks];
    let mut task_hi = vec![0i64; n_tasks];
    let mut next = 1 + n;
    for (k, task) in sys.tasks().iter().enumerate() {
        let subs = sys.task_subtasks(task.id);
        if subs.is_empty() {
            ts_base[k] = next;
            continue;
        }
        let lo = subs.iter().map(|s| s.release).min().expect("nonempty");
        let hi = subs.iter().map(|s| s.deadline).max().expect("nonempty");
        assert!(
            lo >= 0,
            "flow engine requires nonnegative releases (task {:?} releases at {lo})",
            task.id
        );
        ts_base[k] = next;
        task_lo[k] = lo;
        task_hi[k] = hi;
        next += usize::try_from(hi - lo).expect("window span fits usize");
    }
    let slot_base = next;
    let horizon_len = usize::try_from(horizon).expect("horizon fits usize");
    let sink = slot_base + horizon_len;
    let mut net = FlowNetwork::new(sink + 1);

    for t in 0..horizon_len {
        net.add_edge(slot_base + t, sink, i64::from(m));
    }

    // Patch each task's demand into the network and re-augment: Dinic's
    // residual state is preserved across calls, so each call only finds
    // the new task's augmenting paths.
    let mut window_edges: Vec<(EdgeId, SubtaskRef, i64)> = Vec::new();
    let mut saturated = 0i64;
    for (k, task) in sys.tasks().iter().enumerate() {
        let subs = sys.task_subtasks(task.id);
        if subs.is_empty() {
            continue;
        }
        for st in sys.task_subtask_refs(task.id) {
            let s = sys.subtask(st);
            net.add_edge(0, 1 + st.idx(), 1);
            for slot in s.release..s.deadline {
                let ts = ts_base[k] + usize::try_from(slot - task_lo[k]).expect("in range");
                let eid = net.add_edge(1 + st.idx(), ts, 1);
                window_edges.push((eid, st, slot));
            }
        }
        for slot in task_lo[k]..task_hi[k] {
            let ts = ts_base[k] + usize::try_from(slot - task_lo[k]).expect("in range");
            let slot_idx = usize::try_from(slot).expect("in range");
            net.add_edge(ts, slot_base + slot_idx, 1);
        }
        saturated += net.max_flow(0, sink);
    }
    assert!(
        saturated == i64::try_from(n).expect("subtask count fits i64"),
        "flow engine: max flow {saturated} < {n} subtasks — the system is \
         infeasible on {m} processors (window demand exceeds capacity)"
    );

    // Extraction: the saturated window edges name each subtask's slot.
    let mut slot_of: Vec<Option<i64>> = vec![None; n];
    for &(eid, st, slot) in &window_edges {
        if net.flow(eid) == 1 {
            assert!(
                slot_of[st.idx()].is_none(),
                "unit subtask {st:?} carries flow in two slots"
            );
            slot_of[st.idx()] = Some(slot);
        }
    }
    let mut by_slot: Vec<(i64, SubtaskRef)> = slot_of
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let i_u32 = u32::try_from(i).expect("subtask count fits u32");
            (
                s.expect("saturation places every subtask"),
                SubtaskRef(i_u32),
            )
        })
        .collect();
    by_slot.sort_unstable();
    let mut cells = Vec::with_capacity(n);
    let mut i = 0;
    while i < by_slot.len() {
        let slot = by_slot[i].0;
        let run = by_slot[i..].iter().take_while(|x| x.0 == slot).count();
        assert!(run <= m as usize, "slot {slot} over capacity");
        for (proc, &(_, st)) in by_slot[i..i + run].iter().enumerate() {
            cells.push(Cell {
                slot,
                proc: u32::try_from(proc).expect("proc fits u32"),
                st,
            });
        }
        i += run;
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_numeric::Rat;
    use pfair_taskmodel::release;

    use crate::cost::{FullQuantum, ScaledCost};

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    fn assert_windows_respected(sys: &TaskSystem, sched: &Schedule) {
        for (st, s) in sys.iter_refs() {
            let start = sched.start(st).floor();
            assert!(
                s.release <= start && start < s.deadline,
                "{:?} at slot {start} outside its PF-window [{}, {})",
                s.id,
                s.release,
                s.deadline
            );
        }
    }

    #[test]
    fn fig2_flow_is_window_valid_and_meets_deadlines() {
        let sys = fig2_system();
        let sched = simulate_flow(&sys, 2, &mut FullQuantum);
        assert_windows_respected(&sys, &sched);
        for t in 0..6 {
            assert!(sched.executing_in_slot(t).count() <= 2);
        }
        for (st, s) in sys.iter_refs() {
            assert!(sched.completion(st) <= Rat::int(s.deadline));
        }
    }

    #[test]
    fn full_utilization_saturates_every_slot() {
        let sys = release::periodic(&[(1, 2), (1, 3), (1, 6), (1, 1)], 6);
        assert_eq!(sys.utilization(), Rat::int(2));
        let sched = simulate_flow(&sys, 2, &mut FullQuantum);
        assert_windows_respected(&sys, &sched);
        for t in 0..6 {
            assert_eq!(sched.executing_in_slot(t).count(), 2, "slot {t} not full");
        }
    }

    #[test]
    fn handles_is_offsets() {
        // An IS system (offset windows) is still feasible and still
        // window-valid under the flow engine.
        let sys = release::periodic(&[(2, 5), (1, 3), (3, 7)], 21).shifted(2, 2);
        let sched = simulate_flow(&sys, 2, &mut FullQuantum);
        assert_windows_respected(&sys, &sched);
        assert_eq!(sched.placements().len(), sys.num_subtasks());
    }

    #[test]
    fn schedule_independent_of_cost_model() {
        let sys = fig2_system();
        let full = simulate_flow(&sys, 2, &mut FullQuantum);
        let scaled = simulate_flow(&sys, 2, &mut ScaledCost(Rat::new(1, 2)));
        for (x, y) in full.placements().iter().zip(scaled.placements()) {
            assert_eq!((x.st, x.proc, x.start), (y.st, y.proc, y.start));
        }
    }

    #[test]
    fn precedence_holds_within_every_task() {
        let sys = release::periodic(&[(3, 4), (2, 3), (5, 12)], 12);
        let sched = simulate_flow(&sys, 2, &mut FullQuantum);
        for task in sys.tasks() {
            let mut prev: Option<i64> = None;
            for st in sys.task_subtask_refs(task.id) {
                let slot = sched.start(st).floor();
                if let Some(p) = prev {
                    assert!(p < slot, "task {:?} precedence violated", task.id);
                }
                prev = Some(slot);
            }
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn rejects_infeasible_demand() {
        // Three unit-weight tasks on one processor: windows cannot fit.
        let sys = release::periodic(&[(1, 1), (1, 1), (1, 1)], 2);
        let _ = simulate_flow(&sys, 1, &mut FullQuantum);
    }
}
