//! Shared replay driver for the *slot-table* engines (BF, flow-network).
//!
//! Unlike the event-driven simulators, the BF and flow engines decide the
//! complete mapping `subtask → (slot, processor)` up front — BF at period
//! boundaries, the flow engine by solving a max-flow instance. What remains
//! identical between them is the act of turning that table into a
//! [`Schedule`] while threading the cost model and the observer: visiting
//! slots in order, announcing quantum ends before the next decision
//! instant, and emitting `Tick`/`Ready`/`QuantumStart`/`Idle` exactly the
//! way the per-slot SFQ driver does.
//!
//! The replay loop is written once over [`TimeDomain`], the same
//! abstraction the DVQ/staggered event loops run in. Slot engines only ever
//! instantiate the exact tier: every decision instant is an integral slot,
//! there is no event heap to speed up, and costs enter only as completion
//! offsets — so the tick tier would buy nothing, but keeping the arithmetic
//! behind the trait keeps the loop shaped like its event-driven siblings.

use pfair_obs::{Observer, ReadyCause, SchedEvent};
use pfair_taskmodel::{SubtaskRef, TaskSystem};

use crate::cost::{checked_cost, CostModel};
use crate::emit::{flush_ends, PendingEnd};
use crate::schedule::{Placement, QuantumModel, Schedule};
use crate::tdomain::{ExactTimes, TimeDomain};

/// One decided cell of a slot table: `st` runs in slot `[slot, slot + 1)`
/// on processor `proc`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Cell {
    /// The (integral) slot.
    pub slot: i64,
    /// The processor, in `0..m`.
    pub proc: u32,
    /// The subtask.
    pub st: SubtaskRef,
}

/// Replays a recorded event stream into a DVQ [`Schedule`], validating it
/// along the way.
///
/// This is the inverse of the emitting engines: where they turn decisions
/// into `QuantumStart` events, this turns a stream of events — typically
/// recorded from a *real* multi-threaded `pfair-runtime` execution — back
/// into the `Schedule` the conformance bank and `pfair-analysis` judge.
/// Only `QuantumStart` events carry placements; everything else is
/// ignored here (the invariants that care about ends and verdicts recompute
/// them from `start + cost`).
///
/// # Errors
/// An explanatory message when the stream names a subtask the system does
/// not contain, schedules one twice, runs one on a processor `≥ m`, or
/// fails to schedule a released subtask at all. These are exactly the
/// torn-publication shapes a concurrency bug produces, so the message
/// carries the offending subtask.
pub fn replay_events(sys: &TaskSystem, m: u32, events: &[SchedEvent]) -> Result<Schedule, String> {
    let mut placements = Vec::new();
    let mut placed = vec![false; sys.num_subtasks()];
    for ev in events {
        let SchedEvent::QuantumStart {
            id,
            proc,
            start,
            cost,
            holds_until,
            ..
        } = ev
        else {
            continue;
        };
        let st = sys.find(*id).ok_or_else(|| {
            format!(
                "replayed stream schedules T{}_{}, which the system never released",
                id.task.0, id.index
            )
        })?;
        if placed[st.idx()] {
            return Err(format!(
                "replayed stream schedules T{}_{} twice",
                id.task.0, id.index
            ));
        }
        placed[st.idx()] = true;
        if *proc >= m {
            return Err(format!(
                "replayed stream runs T{}_{} on processor {proc}, but m = {m}",
                id.task.0, id.index
            ));
        }
        placements.push(Placement {
            st,
            proc: *proc,
            start: *start,
            cost: *cost,
            holds_until: *holds_until,
        });
    }
    if let Some(idx) = placed.iter().position(|&p| !p) {
        let s = sys.subtasks()[idx].id;
        return Err(format!(
            "replayed stream never schedules T{}_{} (released subtask lost)",
            s.task.0, s.index
        ));
    }
    Ok(Schedule::new(sys, QuantumModel::Dvq, m, placements))
}

/// Replays a decided slot table into a [`Schedule`], emitting the standard
/// event stream along the way.
pub(crate) fn replay<O: Observer>(
    sys: &TaskSystem,
    model: QuantumModel,
    m: u32,
    cells: Vec<Cell>,
    cost: &mut dyn CostModel,
    obs: &mut O,
) -> Schedule {
    replay_in(&ExactTimes, sys, model, m, cells, cost, obs)
        .expect("the exact time domain is infallible")
}

fn replay_in<D: TimeDomain, O: Observer>(
    dom: &D,
    sys: &TaskSystem,
    model: QuantumModel,
    m: u32,
    mut cells: Vec<Cell>,
    cost: &mut dyn CostModel,
    obs: &mut O,
) -> Option<Schedule> {
    cells.sort_unstable_by_key(|c| (c.slot, c.proc));
    let mut placements = Vec::with_capacity(cells.len());
    // Slot each subtask ran in (for the readiness cause of successors).
    let mut slot_of: Vec<Option<i64>> = vec![None; sys.num_subtasks()];
    let mut pending_ends: Vec<PendingEnd> = Vec::new();

    let mut i = 0;
    while i < cells.len() {
        let t = cells[i].slot;
        let end = i + cells[i..].iter().take_while(|c| c.slot == t).count();
        let batch = &cells[i..end];
        // Every quantum from an earlier slot completed at or before `t`
        // (costs are ≤ 1): announce those ends before this slot emits.
        if O::ENABLED {
            flush_ends(sys, &mut pending_ends, obs);
            obs.on_event(&SchedEvent::Tick {
                at: dom.to_rat(dom.int(t)?),
            });
            // Slot engines commit to dispatch instants ahead of time, so a
            // subtask's observable readiness *is* its dispatch slot; the
            // cause still records what gated it last (chain vs eligibility).
            for cell in batch {
                let s = sys.subtask(cell.st);
                let pred_done_at = match s.pred {
                    None => i64::MIN,
                    Some(p) => slot_of[p.idx()].expect("slot table respects precedence") + 1,
                };
                let cause = if pred_done_at > s.eligible {
                    ReadyCause::Predecessor
                } else {
                    ReadyCause::Eligibility
                };
                obs.on_event(&SchedEvent::Ready {
                    id: s.id,
                    at: dom.to_rat(dom.int(t)?),
                    cause,
                });
            }
        }
        for cell in batch {
            let start = dom.int(t)?;
            let holds_until = dom.add_one(start)?;
            let c = checked_cost(cost.cost(sys, cell.st), cell.st);
            placements.push(Placement {
                st: cell.st,
                proc: cell.proc,
                start: dom.to_rat(start),
                cost: c,
                holds_until: dom.to_rat(holds_until),
            });
            slot_of[cell.st.idx()] = Some(t);
            if O::ENABLED {
                let s = sys.subtask(cell.st);
                obs.on_event(&SchedEvent::QuantumStart {
                    id: s.id,
                    proc: cell.proc,
                    start: dom.to_rat(start),
                    cost: c,
                    holds_until: dom.to_rat(holds_until),
                    deadline: s.deadline,
                    bbit: s.bbit,
                    group_deadline: s.group_deadline,
                });
                pending_ends.push((
                    dom.to_rat(dom.add_cost(start, c)?),
                    cell.proc,
                    cell.st,
                    dom.to_rat(holds_until) - dom.to_rat(start) - c,
                ));
            }
        }
        if O::ENABLED && batch.len() < m as usize {
            obs.on_event(&SchedEvent::Idle {
                at: dom.to_rat(dom.int(t)?),
                procs: m - batch.len() as u32,
            });
        }
        i = end;
    }

    if O::ENABLED {
        flush_ends(sys, &mut pending_ends, obs);
    }
    Some(Schedule::new(sys, model, m, placements))
}
