//! E9 (extension): early releasing under the DVQ model — the paper's §1
//! remark that "the early-release model of Pfair scheduling provides a
//! less-expensive and simpler alternative to using an auxiliary
//! scheduler" (as DFS does) for soaking up reclaimed idle time.
//!
//! On an *under-loaded* system whose subtasks finish early, plain DVQ
//! still idles whenever nothing is eligible; allowing each subtask to
//! become eligible `k` slots before its Pfair release (`e(T_i) =
//! r(T_i) − k`, still a legal IS system by Eq. (6)) lets the reclaimed
//! capacity pull future work forward. This harness sweeps `k` and
//! reports idle fraction, mean completion improvement, and tardiness
//! (which must stay 0 here: early releasing never hurts a feasible
//! system under PD²).
//!
//! ```text
//! cargo run --release --example early_release [trials]
//! ```

use pfair::core::Algorithm;
use pfair::prelude::*;
use pfair::workload::{random_weights, releasegen};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let m = 4;
    // Under-loaded: util = 3 on 4 processors, so reclaimed time exists.
    let util = Rat::int(3);
    println!(
        "E9: early releasing under DVQ (M = {m}, util = {util}, c = 3/4 fixed, {trials} systems/point)\n"
    );
    println!(
        "{:>3} | {:>10} {:>16} {:>14} {:>9}",
        "k", "idle frac", "mean completion", "max tardiness", "misses"
    );

    let mut base_mean_completion = Rat::ZERO;
    for k in [0i64, 1, 2, 4] {
        let mut idle = 0.0;
        let mut total_completion = Rat::ZERO;
        let mut n_subtasks = 0usize;
        let mut max_tard = Rat::ZERO;
        let mut misses = 0usize;
        for seed in 0..trials {
            let ws = random_weights(
                &TaskGenConfig {
                    target_util: util,
                    max_period: 12,
                    dist: WeightDist::Uniform,
                    fill_exact: true,
                },
                91_000 + seed,
            );
            let sys = releasegen::generate(
                &ws,
                &ReleaseConfig {
                    kind: ReleaseKind::Periodic,
                    horizon: 24,
                    delay_percent: 0,
                    drop_percent: 0,
                    early: k,
                    max_join: 0,
                },
                seed,
            );
            let sched = simulate_dvq(
                &sys,
                m,
                Algorithm::Pd2.order(),
                &mut ScaledCost(Rat::new(3, 4)),
            );
            let w = waste_stats(&sched);
            idle += (w.idle / w.capacity()).to_f64();
            for (st, _) in sys.iter_refs() {
                total_completion += sched.completion(st);
            }
            n_subtasks += sys.num_subtasks();
            let t = tardiness_stats(&sys, &sched);
            max_tard = max_tard.max(t.max);
            misses += t.misses;
        }
        let mean_completion = total_completion / Rat::int(n_subtasks as i64);
        if k == 0 {
            base_mean_completion = mean_completion;
        }
        println!(
            "{:>3} | {:>10.4} {:>16.3} {:>14} {:>9}",
            k,
            idle / trials as f64,
            mean_completion.to_f64(),
            max_tard.to_string(),
            misses
        );
        // Early releasing must not introduce misses on a feasible system
        // beyond the DVQ bound.
        assert!(max_tard <= Rat::ONE);
        assert!(mean_completion <= base_mean_completion);
    }
    println!(
        "\nShape: each extra slot of early-release allowance lowers idle \
         time and mean completion; no auxiliary scheduler needed — the \
         eligibility parameter of the IS model already expresses it."
    );
}
