//! Renders the paper's figures as SVG files under `figures/`.
//!
//! ```text
//! cargo run --example render_figures [out-dir]
//! ```

use pfair::prelude::*;

fn fig2_system() -> TaskSystem {
    release::periodic_named(
        &[
            ("A", 1, 6),
            ("B", 1, 6),
            ("C", 1, 6),
            ("D", 1, 2),
            ("E", 1, 2),
            ("F", 1, 2),
        ],
        6,
    )
}

fn main() -> std::io::Result<()> {
    let out = std::env::args().nth(1).unwrap_or_else(|| "figures".into());
    std::fs::create_dir_all(&out)?;
    let sys = fig2_system();
    let opts = SvgOptions {
        horizon: 6,
        ..SvgOptions::default()
    };

    // Fig. 2(a): SFQ under PD².
    let sfq = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
    std::fs::write(
        format!("{out}/fig2a_sfq_pd2.svg"),
        render_svg(&sys, &sfq, &opts),
    )?;

    // Fig. 2(b): DVQ with δ = 1/4 yields on A_1 and F_1.
    let delta = Rat::new(1, 4);
    let mut costs = FixedCosts::new(Rat::ONE)
        .with(TaskId(0), 1, Rat::ONE - delta)
        .with(TaskId(5), 1, Rat::ONE - delta);
    let dvq = simulate_dvq(&sys, 2, &Pd2, &mut costs);
    std::fs::write(
        format!("{out}/fig2b_dvq_pd2.svg"),
        render_svg(&sys, &dvq, &opts),
    )?;

    // Fig. 2(c) / Fig. 6(a): PD^B.
    let pdb = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
    std::fs::write(
        format!("{out}/fig2c_pdb.svg"),
        render_svg(&sys, &pdb, &opts),
    )?;

    // Fig. 6(b): the right-shifted system under PD².
    let tau = sys.shifted(1, 1);
    let shifted = simulate_sfq(&tau, 2, &Pd2, &mut FullQuantum);
    std::fs::write(
        format!("{out}/fig6b_shifted_pd2.svg"),
        render_svg(
            &tau,
            &shifted,
            &SvgOptions {
                horizon: 7,
                ..SvgOptions::default()
            },
        ),
    )?;

    // Fig. 3(a): the predecessor-blocking instance.
    use pfair::taskmodel::release::{structured, ReleaseSpec};
    let f3 = structured(
        &[
            ReleaseSpec::periodic("A", 1, 84),
            ReleaseSpec {
                name: "B",
                e: 1,
                p: 3,
                delays: &[],
                drops: &[],
                early: 1,
            },
            ReleaseSpec::periodic("C", 1, 2),
            ReleaseSpec::periodic("D", 2, 3),
            ReleaseSpec::periodic("E", 2, 3),
            ReleaseSpec::periodic("F", 3, 4),
        ],
        6,
    )
    .unwrap();
    let mut f3costs = FixedCosts::new(Rat::ONE)
        .with(TaskId(4), 2, Rat::ONE - delta)
        .with(TaskId(5), 3, Rat::ONE - delta);
    let f3sched = simulate_dvq(&f3, 3, &Pd2, &mut f3costs);
    std::fs::write(
        format!("{out}/fig3a_predecessor_blocking.svg"),
        render_svg(
            &f3,
            &f3sched,
            &SvgOptions {
                horizon: 7,
                ..SvgOptions::default()
            },
        ),
    )?;

    println!("wrote 5 SVG figures to {out}/");
    Ok(())
}
