//! Reproduces Fig. 2: the same task set under (a) the SFQ model, (b) the
//! DVQ model with δ-early yields, and (c) the PD^B algorithm — the SFQ
//! schedule that the DVQ allocations reduce to in the limit δ → 0.
//!
//! ```text
//! cargo run --example figure2_models [delta-denominator]
//! ```

use pfair::prelude::*;

fn fig2_system() -> TaskSystem {
    release::periodic_named(
        &[
            ("A", 1, 6),
            ("B", 1, 6),
            ("C", 1, 6),
            ("D", 1, 2),
            ("E", 1, 2),
            ("F", 1, 2),
        ],
        6,
    )
}

fn report(sys: &TaskSystem, label: &str, sched: &Schedule, res: u32) {
    println!("== {label} ==");
    print!(
        "{}",
        render_gantt(
            sys,
            sched,
            &GanttOptions {
                resolution: res,
                horizon: 6
            }
        )
    );
    let t = tardiness_stats(sys, sched);
    match t.worst {
        Some(w) => println!(
            "max tardiness {} ({:?} completes at {}, deadline {})\n",
            t.max,
            sys.subtask(w).id,
            sched.completion(w),
            sys.subtask(w).deadline
        ),
        None => println!("all deadlines met\n"),
    }
}

fn main() {
    let den: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let delta = Rat::new(1, den.max(2));
    let sys = fig2_system();

    // (a) SFQ, PD²: optimal.
    let sfq = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
    report(&sys, "Fig. 2(a): SFQ model under PD²", &sfq, 4);

    // (b) DVQ, PD²: A_1 and F_1 execute for 1 − δ only; B_1 and C_1 start
    //     new quanta at 2 − δ, blocking D_2 and E_2 at time 2.
    let mut costs = FixedCosts::new(Rat::ONE)
        .with(TaskId(0), 1, Rat::ONE - delta)
        .with(TaskId(5), 1, Rat::ONE - delta);
    let dvq = simulate_dvq(&sys, 2, &Pd2, &mut costs);
    report(
        &sys,
        &format!("Fig. 2(b): DVQ model under PD², δ = {delta}"),
        &dvq,
        den.min(16) as u32,
    );

    // (c) PD^B in the SFQ model: the δ → 0 limit of (b) — allocations not
    //     commencing on a boundary postpone to the next one.
    let pdb = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
    report(
        &sys,
        "Fig. 2(c): PD^B in the SFQ model (δ → 0 limit)",
        &pdb,
        4,
    );

    // Verify the limit correspondence subtask by subtask.
    println!("δ → 0 reduction check (⌈DVQ start⌉ == PD^B slot):");
    let mut all_match = true;
    for (st, s) in sys.iter_refs() {
        let ok = Rat::int(dvq.start(st).ceil()) == pdb.start(st);
        all_match &= ok;
        println!(
            "  {:?}: DVQ start {:>6}  →  PD^B slot {}  {}",
            s.id,
            dvq.start(st).to_string(),
            pdb.start(st),
            if ok { "ok" } else { "MISMATCH" }
        );
    }
    assert!(all_match);
}
