//! An online deployment scenario: a streaming server admitting sporadic
//! session jobs at runtime, scheduled by the heap-based online PD²
//! scheduler under the DVQ model.
//!
//! Demonstrates the API a downstream system would embed (register tasks,
//! submit jobs as they arrive, interleave with `run_until`) and verifies
//! the paper's guarantee live: every quantum completes within one quantum
//! of its Pfair pseudo-deadline, while early-finishing quanta are
//! reclaimed immediately.
//!
//! ```text
//! cargo run --release --example online_server [sessions]
//! ```

use pfair::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let sessions: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let m = 4;
    let mut rng = StdRng::seed_from_u64(2026);
    let mut sched = OnlineDvq::new(m);

    // Admission control: accept sessions while utilization fits.
    let mut admitted: Vec<(TaskId, Weight, &str)> = Vec::new();
    let mut util = Rat::ZERO;
    let catalog = [
        ("hd-stream", Weight::new(1, 2)),
        ("sd-stream", Weight::new(1, 4)),
        ("transcode", Weight::new(2, 3)),
        ("thumbnail", Weight::new(1, 12)),
    ];
    for k in 0..sessions {
        let (kind, w) = catalog[rng.gen_range(0..catalog.len())];
        if util + w.as_rat() > Rat::int(i64::from(m)) {
            println!("session {k} ({kind}, wt {w}): REJECTED (would exceed capacity)");
            continue;
        }
        util += w.as_rat();
        let id = sched.add_task(w);
        admitted.push((id, w, kind));
        println!("session {k} ({kind}, wt {w}): admitted as task {id:?}");
    }
    println!("\nadmitted utilization: {util} of {m}\n");

    // Sporadic arrivals over a 30-quantum window, submitted in waves as
    // simulated wall-clock advances.
    let mut next_release: Vec<i64> = admitted.iter().map(|_| 0).collect();
    let mut total_assignments = 0usize;
    let mut max_tardiness = Rat::ZERO;
    let delta = Rat::new(1, 32);
    for wave_end in [8i64, 16, 24, 30] {
        // Submit every job releasing before this wave's end.
        for (k, &(id, w, _)) in admitted.iter().enumerate() {
            while next_release[k] < wave_end {
                sched
                    .submit_job(id, next_release[k])
                    .expect("valid arrival");
                next_release[k] += w.p() + rng.gen_range(0..2i64); // sporadic jitter
            }
        }
        // Advance the scheduler to the wave boundary.
        let log = sched.run_until(Rat::int(wave_end), &mut |_, _| {
            if rng.gen_bool(0.5) {
                Rat::ONE - delta
            } else {
                Rat::ONE
            }
        });
        for a in &log {
            let t = (a.start + a.cost - Rat::int(a.deadline)).max(Rat::ZERO);
            max_tardiness = max_tardiness.max(t);
        }
        total_assignments += log.len();
        println!(
            "wave → t = {wave_end:>2}: dispatched {:>3} quanta (cumulative {total_assignments})",
            log.len()
        );
    }
    // Drain whatever remains.
    let tail = sched.run_until_idle(&mut |_, _| Rat::ONE - delta);
    for a in &tail {
        let t = (a.start + a.cost - Rat::int(a.deadline)).max(Rat::ZERO);
        max_tardiness = max_tardiness.max(t);
    }
    total_assignments += tail.len();

    println!(
        "\ntotal quanta dispatched: {total_assignments}\nworst lateness: {max_tardiness} quantum (bound: 1)"
    );
    assert!(max_tardiness <= Rat::ONE);
}
