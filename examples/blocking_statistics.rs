//! E8 (extension): how often do the paper's priority inversions actually
//! occur, and how does the PD^B partition engage, as the yield
//! probability rises?
//!
//! For each yield probability the harness reports, over random
//! full-utilization systems:
//!
//! * DVQ/PD²: eligibility- vs predecessor-blocking event counts, mean
//!   blocking duration, max tardiness;
//! * PD^B (SFQ): how many slots have a nonempty `PB(t)` partition
//!   (the predecessor-blocking machinery engaging at boundaries).
//!
//! ```text
//! cargo run --release --example blocking_statistics [trials]
//! ```

use pfair::core::Algorithm;
use pfair::prelude::*;
use pfair::workload::{random_weights, releasegen, AdversarialYield};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let m = 4;
    let delta = Rat::new(1, 64);
    println!(
        "E8: blocking frequency vs yield probability (M = {m}, δ = {delta}, {trials} systems/point)\n"
    );
    println!(
        "{:>7} | {:>8} {:>8} {:>10} {:>13} | {:>10} {:>9}",
        "yield%", "elig-blk", "pred-blk", "mean dur", "max tardiness", "PB slots", "per 1000"
    );

    for yield_percent in [0u8, 10, 30, 50, 70, 90] {
        let mut elig = 0usize;
        let mut pred = 0usize;
        let mut dur_total = Rat::ZERO;
        let mut max_tard = Rat::ZERO;
        let mut pb_slots = 0usize;
        let mut total_slots = 0usize;
        for seed in 0..trials {
            let ws = random_weights(&TaskGenConfig::full(m, 12), 88_000 + seed);
            let sys = releasegen::generate(&ws, &ReleaseConfig::periodic(24), seed);
            // DVQ with adversarial yields.
            let mut cost = AdversarialYield::new(delta, yield_percent, seed);
            let sched = simulate_dvq(&sys, m, Algorithm::Pd2.order(), &mut cost);
            for ev in detect_blocking(&sys, &sched, Algorithm::Pd2.order()) {
                match ev.kind {
                    BlockingKind::Eligibility => elig += 1,
                    BlockingKind::Predecessor => pred += 1,
                }
                dur_total += ev.duration();
            }
            max_tard = max_tard.max(tardiness_stats(&sys, &sched).max);
            // PD^B partition engagement (boundary analogue).
            let (_, stats) = simulate_sfq_pdb_instrumented(&sys, m, &mut FullQuantum);
            pb_slots += stats.iter().filter(|s| s.pb > 0).count();
            total_slots += stats.len();
        }
        let events = elig + pred;
        let mean_dur = if events == 0 {
            0.0
        } else {
            (dur_total / Rat::int(events as i64)).to_f64()
        };
        println!(
            "{:>7} | {:>8} {:>8} {:>10.3} {:>13} | {:>10} {:>9.1}",
            yield_percent,
            elig,
            pred,
            mean_dur,
            max_tard.to_string(),
            pb_slots,
            1000.0 * pb_slots as f64 / total_slots.max(1) as f64,
        );
        assert!(max_tard <= Rat::ONE);
        if yield_percent == 0 {
            assert_eq!(events, 0, "no yields ⇒ no inversions");
        }
    }
    println!(
        "\nShape: inversions appear as soon as subtasks yield, dominated by \
         eligibility blocking; predecessor blocking is rarer (it needs the \
         precise Fig. 3 interleaving); tardiness stays below one quantum \
         throughout."
    );
}
