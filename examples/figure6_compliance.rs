//! Reproduces Fig. 6: the k-compliance construction behind Theorem 2.
//!
//! (a) A PD^B schedule for τ^B (the Fig. 2 task set) in which F_2 misses
//!     its deadline by exactly one quantum;
//! (b) the PD² schedule of τ — every IS-window right-shifted one slot —
//!     which meets every (shifted) deadline;
//! (c) the k-compliant intermediate systems: eligibility times are
//!     restored one subtask at a time in PD^B rank order, and each τ^k
//!     remains schedulable with no misses.
//!
//! ```text
//! cargo run --example figure6_compliance
//! ```

use pfair::prelude::*;

fn main() {
    let sys_b = release::periodic_named(
        &[
            ("A", 1, 6),
            ("B", 1, 6),
            ("C", 1, 6),
            ("D", 1, 2),
            ("E", 1, 2),
            ("F", 1, 2),
        ],
        6,
    );

    // (a) PD^B schedule S_B with its one-quantum miss.
    let sched_b = simulate_sfq_pdb(&sys_b, 2, &mut FullQuantum);
    println!("== Fig. 6(a): PD^B schedule S_B for τ^B ==");
    print!(
        "{}",
        render_gantt(
            &sys_b,
            &sched_b,
            &GanttOptions {
                resolution: 2,
                horizon: 6
            }
        )
    );
    let stats = tardiness_stats(&sys_b, &sched_b);
    println!(
        "max tardiness: {} ({:?})\n",
        stats.max,
        sys_b.subtask(stats.worst.expect("F_2 misses")).id
    );
    let order = ranks(&sched_b);
    println!(
        "PD^B ranks: {}\n",
        order
            .iter()
            .map(|&st| format!("{:?}", sys_b.subtask(st).id))
            .collect::<Vec<_>>()
            .join(" ")
    );

    // (b) τ = right-shift of τ^B by one slot: PD² meets everything.
    let tau = sys_b.shifted(1, 1);
    let sched_tau = simulate_sfq(&tau, 2, &Pd2, &mut FullQuantum);
    println!("== Fig. 6(b): PD² schedule for the right-shifted τ ==");
    print!(
        "{}",
        render_gantt(
            &tau,
            &sched_tau,
            &GanttOptions {
                resolution: 2,
                horizon: 7
            }
        )
    );
    assert!(check_window_containment(&tau, &sched_tau).is_empty());
    println!("all (shifted) deadlines met\n");

    // (c) Walk k-compliance: τ^0 = τ up to τ^n; each is feasible and PD²
    //     schedules it without misses (the empirical content of Lemma 6).
    println!("== Fig. 6(c): k-compliance walk ==");
    for k in 0..=sys_b.num_subtasks() {
        let tau_k = k_compliant_system(&sys_b, &order, k);
        let sched = simulate_sfq(&tau_k, 2, &Pd2, &mut FullQuantum);
        let misses = check_window_containment(&tau_k, &sched).len();
        let restored = order[..k]
            .iter()
            .map(|&st| format!("{:?}", sys_b.subtask(st).id))
            .collect::<Vec<_>>()
            .join(" ");
        println!("  τ^{k:<2} eligibility restored for [{restored}] → misses: {misses}");
        assert_eq!(misses, 0, "τ^{k} must remain schedulable");
    }
    println!(
        "\nEvery τ^k is schedulable: viewed against τ^B's original \
              deadlines, PD^B is at most one quantum late (Theorem 2)."
    );
}
