//! Reproduces the predecessor-blocking scenario of Fig. 3 on a concrete
//! six-task, three-processor instance (reconstructed; the paper's figure
//! fixes the phenomenon and several window positions but not every
//! weight — see EXPERIMENTS.md, row F3).
//!
//! Insets: (a) E_2 and F_3 yield early in slot 2 → B_2 is
//! predecessor-blocked at t = 3 by A_1; (b) no early yields → no
//! inversion at all; (c) B_1 also yields early → B_2 runs sooner and D_3
//! is eligibility-blocked instead.
//!
//! ```text
//! cargo run --example figure3_blocking
//! ```

use pfair::prelude::*;
use pfair::taskmodel::release::{structured, ReleaseSpec};

fn fig3_system() -> TaskSystem {
    structured(
        &[
            ReleaseSpec::periodic("A", 1, 84),
            ReleaseSpec {
                name: "B",
                e: 1,
                p: 3,
                delays: &[],
                drops: &[],
                early: 1, // e(B_2) = 2 < 3: predecessor blocking possible
            },
            ReleaseSpec::periodic("C", 1, 2),
            ReleaseSpec::periodic("D", 2, 3),
            ReleaseSpec::periodic("E", 2, 3),
            ReleaseSpec::periodic("F", 3, 4),
        ],
        6,
    )
    .unwrap()
}

fn show(sys: &TaskSystem, label: &str, sched: &Schedule) {
    println!("== {label} ==");
    print!(
        "{}",
        render_gantt(
            sys,
            sched,
            &GanttOptions {
                resolution: 4,
                horizon: 7
            }
        )
    );
    let events = detect_blocking(sys, sched, &Pd2);
    if events.is_empty() {
        println!("no priority inversions\n");
    } else {
        for ev in &events {
            println!(
                "  {:?}: {:?} ready at {}, scheduled at {} (blocked {} by {})",
                ev.kind,
                sys.subtask(ev.victim).id,
                ev.ready_at,
                ev.scheduled_at,
                ev.duration(),
                ev.blockers
                    .iter()
                    .map(|&b| format!("{:?}", sys.subtask(b).id))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        println!();
    }
}

fn main() {
    let sys = fig3_system();
    println!(
        "utilization {} on M = 3 (feasible: {})\n",
        sys.utilization(),
        sys.is_feasible(3)
    );
    let delta = Rat::new(1, 4);

    // (a) E_2 and F_3 yield early: B_2 predecessor-blocked by A_1 at t=3.
    let mut costs_a = FixedCosts::new(Rat::ONE)
        .with(TaskId(4), 2, Rat::ONE - delta)
        .with(TaskId(5), 3, Rat::ONE - delta);
    show(
        &sys,
        "Fig. 3(a): E_2, F_3 yield early — predecessor blocking",
        &simulate_dvq(&sys, 3, &Pd2, &mut costs_a),
    );

    // (b) No early yields: no inversion.
    show(
        &sys,
        "Fig. 3(b): full quanta — no blocking",
        &simulate_dvq(&sys, 3, &Pd2, &mut FullQuantum),
    );

    // (c) B_1 yields early too: D_3 is eligibility-blocked instead.
    let mut costs_c = FixedCosts::new(Rat::ONE)
        .with(TaskId(4), 2, Rat::ONE - delta)
        .with(TaskId(5), 3, Rat::ONE - delta)
        .with(TaskId(1), 1, Rat::ONE - delta);
    show(
        &sys,
        "Fig. 3(c): B_1 yields early too — eligibility blocking shifts to D_3",
        &simulate_dvq(&sys, 3, &Pd2, &mut costs_c),
    );

    // (d) The same system under PD^B (SFQ): the EB/PB/DB partition at
    //     work. Render and report tardiness.
    let pdb = simulate_sfq_pdb(&sys, 3, &mut FullQuantum);
    show(&sys, "Fig. 3(d): PD^B in the SFQ model", &pdb);
    let t = tardiness_stats(&sys, &pdb);
    println!("PD^B max tardiness: {} (Theorem 2 bound: 1)", t.max);
    assert!(t.max <= Rat::ONE);
}
