//! E11 (extension): the *distribution* of DVQ tardiness, not just its
//! maximum.
//!
//! Theorem 3 bounds the worst case at one quantum; operators of soft
//! real-time systems also care where the mass sits. This harness sweeps
//! yield regimes and prints a text histogram of subtask tardiness over
//! `[0, 1]`: under light yielding almost everything is on time; under
//! adversarial near-boundary yields the tardy mass piles up just below
//! one quantum (the `1 − δ` signature of eligibility blocking), never
//! crossing it.
//!
//! ```text
//! cargo run --release --example tardiness_distribution [trials]
//! ```

use pfair::analysis::tardiness::tardiness_histogram;
use pfair::core::Algorithm;
use pfair::prelude::*;
use pfair::workload::{random_weights, releasegen, AdversarialYield, BimodalCost, UniformCost};

const BUCKETS: usize = 9; // on-time + 8 bins over (0, 1]

fn bar(n: usize, total: usize) -> String {
    let width = 40.0 * n as f64 / total.max(1) as f64;
    "#".repeat(width.round() as usize)
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let m = 4;
    println!(
        "E11: tardiness distribution under PD²-DVQ (M = {m}, full utilization, {trials} systems/regime)\n"
    );

    type CostFactory = fn(u64) -> Box<dyn CostModel>;
    let regimes: [(&str, CostFactory); 3] = [
        ("uniform costs in [1/4, 1]", |seed| {
            Box::new(UniformCost::new(Rat::new(1, 4), seed))
        }),
        ("bimodal: 70% full, 30% at 1/2", |seed| {
            Box::new(BimodalCost::new(70, Rat::new(1, 2), seed))
        }),
        ("adversarial: 70% yield 1 − 1/64", |seed| {
            Box::new(AdversarialYield::new(Rat::new(1, 64), 70, seed))
        }),
    ];

    for (label, make) in regimes {
        let mut hist = [0usize; BUCKETS];
        let mut max_tard = Rat::ZERO;
        for seed in 0..trials {
            let ws = random_weights(&TaskGenConfig::full(m, 12), 99_000 + seed);
            let sys = releasegen::generate(&ws, &ReleaseConfig::periodic(24), seed);
            let mut cost = make(seed);
            let sched = simulate_dvq(&sys, m, Algorithm::Pd2.order(), cost.as_mut());
            for (bin, count) in tardiness_histogram(&sys, &sched, BUCKETS)
                .into_iter()
                .enumerate()
            {
                hist[bin] += count;
            }
            max_tard = max_tard.max(tardiness_stats(&sys, &sched).max);
        }
        let total: usize = hist.iter().sum();
        println!("== {label} (n = {total}, max tardiness {max_tard}) ==");
        println!("  on time       {:>7}  {}", hist[0], bar(hist[0], total));
        let tardy: usize = hist[1..].iter().sum();
        for (k, &n) in hist.iter().enumerate().skip(1) {
            let lo = (k - 1) as f64 / (BUCKETS - 1) as f64;
            let hi = k as f64 / (BUCKETS - 1) as f64;
            println!("  ({lo:.3},{hi:.3}] {n:>7}  {}", bar(n, tardy.max(1)));
        }
        println!();
        assert!(max_tard <= Rat::ONE);
    }
    println!(
        "Shape: tardy mass concentrates in the top bin under adversarial \
         yields (the 1 − δ eligibility-blocking signature) and spreads thin \
         under benign regimes; the one-quantum ceiling is never crossed."
    );
}
