//! Quickstart: schedule a task set under the SFQ and DVQ models and
//! compare.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pfair::prelude::*;

fn main() {
    // Three weight-1/6 tasks and three weight-1/2 tasks: total utilization
    // 2, scheduled on M = 2 processors (the paper's running example).
    let sys = release::periodic_named(
        &[
            ("A", 1, 6),
            ("B", 1, 6),
            ("C", 1, 6),
            ("D", 1, 2),
            ("E", 1, 2),
            ("F", 1, 2),
        ],
        6,
    );
    println!(
        "task system: {} tasks, {} subtasks, utilization {} (feasible on 2 cpus: {})\n",
        sys.num_tasks(),
        sys.num_subtasks(),
        sys.utilization(),
        sys.is_feasible(2)
    );

    // 1. Classical SFQ model: PD² is optimal — zero tardiness.
    let sfq = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
    println!("== SFQ model, PD² (every quantum runs to its boundary) ==");
    print!(
        "{}",
        render_gantt(
            &sys,
            &sfq,
            &GanttOptions {
                resolution: 4,
                horizon: 6
            }
        )
    );
    let t = tardiness_stats(&sys, &sfq);
    println!("max tardiness: {}   misses: {}\n", t.max, t.misses);

    // 2. DVQ model with early yields: A_1 and F_1 complete δ = 1/4 early;
    //    the freed time is reclaimed, but a priority inversion makes F_2
    //    miss its deadline — by less than one quantum (Theorem 3).
    let delta = Rat::new(1, 4);
    let mut costs = FixedCosts::new(Rat::ONE)
        .with(TaskId(0), 1, Rat::ONE - delta) // A_1
        .with(TaskId(5), 1, Rat::ONE - delta); // F_1
    let dvq = simulate_dvq(&sys, 2, &Pd2, &mut costs);
    println!("== DVQ model, PD² (A_1, F_1 yield {delta} early) ==");
    print!(
        "{}",
        render_gantt(
            &sys,
            &dvq,
            &GanttOptions {
                resolution: 4,
                horizon: 6
            }
        )
    );
    let t = tardiness_stats(&sys, &dvq);
    println!("max tardiness: {}   misses: {}", t.max, t.misses);
    for ev in detect_blocking(&sys, &dvq, &Pd2) {
        println!(
            "  inversion: {:?} ready at {} but scheduled at {} ({:?} blocking)",
            sys.subtask(ev.victim).id,
            ev.ready_at,
            ev.scheduled_at,
            ev.kind
        );
    }
    println!();

    // 3. The paper's bound, empirically: sweep random full-utilization
    //    systems with adversarial yields — tardiness never exceeds 1.
    let cfg = ExperimentConfig {
        m: 4,
        algorithm: pfair::core::Algorithm::Pd2,
        model: ModelKind::Dvq,
        taskgen: TaskGenConfig::full(4, 12),
        release: ReleaseConfig::periodic(24),
        cost: pfair::workload::experiment::CostKind::Adversarial {
            delta: Rat::new(1, 64),
            yield_percent: 70,
        },
        trials: 50,
        base_seed: 2026,
    };
    let sweep = run_sweep(&cfg, 4);
    println!(
        "== Theorem 3 spot-check: 50 random full-utilization systems on 4 cpus ==\n\
         subtasks simulated: {}   misses: {}   max tardiness: {} (bound: 1)",
        sweep.total_subtasks(),
        sweep.total_misses(),
        sweep.max_tardiness()
    );
    assert!(sweep.max_tardiness() <= Rat::ONE);
}
