//! E10 (extension): migrations and quantum-start contention — the
//! implementation overheads behind the paper's §3 remark ("preemption and
//! migration costs … can be easily accounted for by inflating task
//! execution costs") and behind the staggered model's existence.
//!
//! Three measurements on the same random workloads:
//!
//! 1. migrations under plain SFQ (decision-order placement) vs SFQ with
//!    *sticky processor affinity* — identical schedules, different
//!    placements;
//! 2. peak simultaneous quantum starts under SFQ vs staggered vs DVQ
//!    (bus-contention proxy — the staggered model's raison d'être);
//! 3. the weight inflation needed to absorb a per-quantum overhead ε, and
//!    the largest sustainable ε (taskmodel::inflation).
//!
//! ```text
//! cargo run --release --example migration_affinity [trials]
//! ```

use pfair::analysis::overhead::{migration_stats, peak_simultaneous_starts};
use pfair::core::Algorithm;
use pfair::prelude::*;
use pfair::taskmodel::inflation::{inflate_set, max_sustainable_overhead};
use pfair::workload::{random_weights, releasegen};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let m = 4;
    println!("E10: migrations, contention, and overhead inflation (M = {m})\n");

    // 1. Migrations: plain vs sticky-affinity SFQ.
    let mut plain_migrations = 0usize;
    let mut sticky_migrations = 0usize;
    let mut pairs = 0usize;
    for seed in 0..trials {
        let ws = random_weights(&TaskGenConfig::full(m, 12), 95_000 + seed);
        let sys = releasegen::generate(&ws, &ReleaseConfig::periodic(24), seed);
        let plain = simulate_sfq(&sys, m, Algorithm::Pd2.order(), &mut FullQuantum);
        let sticky = simulate_sfq_affine(&sys, m, Algorithm::Pd2.order(), &mut FullQuantum);
        // Same schedule, different placement.
        for (st, _) in sys.iter_refs() {
            assert_eq!(plain.start(st), sticky.start(st));
        }
        let mp = migration_stats(&sys, &plain);
        let ms = migration_stats(&sys, &sticky);
        plain_migrations += mp.migrations;
        sticky_migrations += ms.migrations;
        pairs += mp.adjacent_pairs;
    }
    println!(
        "1. migrations over {pairs} adjacent subtask pairs:\n\
         \u{20}  decision-order placement: {plain_migrations} ({:.1}%)\n\
         \u{20}  sticky affinity:          {sticky_migrations} ({:.1}%)\n",
        100.0 * plain_migrations as f64 / pairs as f64,
        100.0 * sticky_migrations as f64 / pairs as f64
    );
    assert!(sticky_migrations <= plain_migrations);

    // 2. Contention: peak simultaneous quantum starts.
    let ws = random_weights(&TaskGenConfig::full(m, 12), 96_000);
    let sys = releasegen::generate(&ws, &ReleaseConfig::periodic(24), 1);
    let mk = || ScaledCost(Rat::new(7, 8));
    let sfq = simulate_sfq(&sys, m, Algorithm::Pd2.order(), &mut mk());
    let stag = simulate_staggered(&sys, m, Algorithm::Pd2.order(), &mut mk());
    let dvq = simulate_dvq(&sys, m, Algorithm::Pd2.order(), &mut mk());
    println!(
        "2. peak simultaneous quantum starts (bus-contention proxy):\n\
         \u{20}  SFQ {}   staggered {}   DVQ {}\n",
        peak_simultaneous_starts(&sfq),
        peak_simultaneous_starts(&stag),
        peak_simultaneous_starts(&dvq)
    );
    assert_eq!(peak_simultaneous_starts(&sfq), m as usize);
    assert!(peak_simultaneous_starts(&stag) < m as usize);

    // 3. Overhead inflation.
    let base: Vec<Weight> = random_weights(
        &TaskGenConfig {
            target_util: Rat::new(3 * i64::from(m), 4),
            max_period: 12,
            dist: WeightDist::Uniform,
            fill_exact: false,
        },
        97_000,
    );
    let util: Rat = base.iter().map(|w| w.as_rat()).sum();
    println!(
        "3. overhead inflation on a util-{util} base set ({} tasks):",
        base.len()
    );
    for eps_den in [20i64, 10, 5] {
        let eps = Rat::new(1, eps_den);
        match inflate_set(&base, eps) {
            Ok(set) => println!(
                "   ε = {eps}: inflated utilization {} (fits on {m}: {})",
                set.utilization,
                set.utilization <= Rat::int(i64::from(m))
            ),
            Err(e) => println!("   ε = {eps}: not representable ({e})"),
        }
    }
    let max_eps = max_sustainable_overhead(&base, m, 100);
    println!("   largest sustainable ε (grid 1/100): {max_eps:?}");
}
