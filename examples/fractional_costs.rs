//! The paper's §4 future-work direction, realized as an experiment:
//! *"relaxing another limitation of Pfair scheduling, that which requires
//! the execution cost of each task to be expressed as an integral multiple
//! of the maximum size of a quantum."*
//!
//! A job whose true cost is `e − 1 + frac` quanta is reserved the usual
//! `e` integral quanta, with the final subtask of every job executing only
//! `frac` of its quantum. Under SFQ the residue `1 − frac` is stranded on
//! every job; under DVQ it is reclaimed, and Theorem 3 keeps the
//! conservative reservation's tardiness within one quantum.
//!
//! ```text
//! cargo run --release --example fractional_costs [trials]
//! ```

use pfair::core::Algorithm;
use pfair::prelude::*;
use pfair::workload::{random_weights, releasegen};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let m = 4;
    println!(
        "§4 future work: non-integral job costs via fractional final subtasks\n\
         (M = {m}, full utilization, {trials} random systems per point)\n"
    );
    println!(
        "{:>6} | {:>9} {:>9} | {:>9} {:>13} {:>8}",
        "frac", "SFQ waste", "SFQ tard", "DVQ waste", "DVQ max tard", "ok"
    );

    for den in [1i64, 8, 4, 2] {
        let frac = if den == 1 {
            Rat::ONE
        } else {
            Rat::new(den - 1, den)
        };
        let mut sfq_waste = 0.0;
        let mut dvq_waste = 0.0;
        let mut sfq_tard = Rat::ZERO;
        let mut dvq_tard = Rat::ZERO;
        for seed in 0..trials as u64 {
            let ws = random_weights(&TaskGenConfig::full(m, 12), 31_000 + seed);
            let sys = releasegen::generate(&ws, &ReleaseConfig::periodic(24), seed);
            let sfq = simulate_sfq(
                &sys,
                m,
                Algorithm::Pd2.order(),
                &mut PartialFinalSubtask::new(frac),
            );
            let dvq = simulate_dvq(
                &sys,
                m,
                Algorithm::Pd2.order(),
                &mut PartialFinalSubtask::new(frac),
            );
            sfq_waste += waste_stats(&sfq).wasted_fraction().to_f64();
            dvq_waste += waste_stats(&dvq).wasted_fraction().to_f64();
            sfq_tard = sfq_tard.max(tardiness_stats(&sys, &sfq).max);
            dvq_tard = dvq_tard.max(tardiness_stats(&sys, &dvq).max);
        }
        let n = trials as f64;
        let ok = dvq_tard <= Rat::ONE && sfq_tard == Rat::ZERO;
        println!(
            "{:>6} | {:>9.4} {:>9} | {:>9.4} {:>13} {:>8}",
            frac.to_string(),
            sfq_waste / n,
            sfq_tard.to_string(),
            dvq_waste / n,
            dvq_tard.to_string(),
            if ok { "ok" } else { "VIOLATION" }
        );
        assert!(ok);
    }
    println!(
        "\nShape: SFQ strands (1 − frac) of every job's final quantum; DVQ \
         reclaims it with tardiness still bounded by one quantum — the \
         integral-cost restriction can be relaxed at the cost layer."
    );
}
