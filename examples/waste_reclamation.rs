//! Experiment E5: the §1 motivation, measured. Sweeps the mean actual
//! cost c̄ and reports, for the SFQ, staggered and DVQ models: wasted
//! quantum fraction, busy fraction, makespan, and max tardiness.
//!
//! SFQ and staggered (fixed-size quanta) waste every yield tail; the DVQ
//! model reclaims all of it, finishing the same work no later — at the
//! price of ≤ 1 quantum of tardiness.
//!
//! ```text
//! cargo run --release --example waste_reclamation [trials]
//! ```

use pfair::core::Algorithm;
use pfair::prelude::*;
use pfair::workload::experiment::CostKind;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let m = 4;

    println!(
        "E5: waste vs mean cost — M = {m}, {trials} random full-utilization systems per cell\n"
    );
    println!(
        "{:>6} {:>11} | {:>8} {:>8} {:>9} | {:>8} {:>8} {:>9} | {:>8} {:>9} {:>13}",
        "c̄",
        "cost model",
        "SFQ wst",
        "SFQ busy",
        "SFQ mksp",
        "stg wst",
        "stg busy",
        "stg mksp",
        "DVQ wst",
        "DVQ mksp",
        "DVQ max tard"
    );

    for (label, cost) in [
        ("1", CostKind::Full),
        ("7/8", CostKind::Scaled(Rat::new(7, 8))),
        ("3/4", CostKind::Scaled(Rat::new(3, 4))),
        ("5/8", CostKind::Scaled(Rat::new(5, 8))),
        ("1/2", CostKind::Scaled(Rat::new(1, 2))),
        (
            "~5/8",
            CostKind::Uniform {
                min: Rat::new(1, 4),
            },
        ),
        (
            "~0.9",
            CostKind::Bimodal {
                full_percent: 80,
                low: Rat::new(1, 2),
            },
        ),
    ] {
        let mut cells = Vec::new();
        for model in [ModelKind::Sfq, ModelKind::Staggered, ModelKind::Dvq] {
            let cfg = ExperimentConfig {
                m,
                algorithm: Algorithm::Pd2,
                model,
                taskgen: TaskGenConfig::full(m, 12),
                release: ReleaseConfig::periodic(24),
                cost,
                trials,
                base_seed: 7_700,
            };
            cells.push(run_sweep(&cfg, threads));
        }
        let mean = |s: &pfair::workload::experiment::SweepSummary,
                    f: &dyn Fn(&RunSummary) -> f64| {
            s.runs.iter().map(f).sum::<f64>() / s.runs.len() as f64
        };
        let (sfq, stg, dvq) = (&cells[0], &cells[1], &cells[2]);
        println!(
            "{:>6} {:>11} | {:>8.3} {:>8.3} {:>9.2} | {:>8.3} {:>8.3} {:>9.2} | {:>8.3} {:>9.2} {:>13}",
            label,
            match cost {
                CostKind::Full | CostKind::Scaled(_) => "fixed",
                CostKind::Uniform { .. } => "uniform",
                CostKind::Bimodal { .. } => "bimodal",
                CostKind::Adversarial { .. } => "adversarial",
                CostKind::PartialFinal { .. } => "partial",
            },
            mean(sfq, &|r| r.wasted_fraction.to_f64()),
            mean(sfq, &|r| r.busy_fraction.to_f64()),
            mean(sfq, &|r| r.makespan.to_f64()),
            mean(stg, &|r| r.wasted_fraction.to_f64()),
            mean(stg, &|r| r.busy_fraction.to_f64()),
            mean(stg, &|r| r.makespan.to_f64()),
            mean(dvq, &|r| r.wasted_fraction.to_f64()),
            mean(dvq, &|r| r.makespan.to_f64()),
            dvq.max_tardiness().to_string(),
        );
        // Invariants of the comparison.
        assert_eq!(dvq.mean_wasted_fraction(), 0.0, "DVQ must reclaim all");
        assert!(dvq.max_tardiness() <= Rat::ONE);
    }
    println!(
        "\nShape check: SFQ/staggered waste grows as c̄ falls; DVQ waste is \
         identically 0 and its tardiness never exceeds one quantum."
    );
}
