//! Domain scenario: a soft real-time video wall.
//!
//! The paper's introduction motivates Pfair for "computationally-intensive
//! real-time applications … computer-vision systems, signal-processing" on
//! multiprocessors, and motivates the DVQ model with WCET pessimism and
//! general-purpose-OS integration. This example casts that as a concrete
//! deployment:
//!
//! * four 30 fps video decoders (weight 1/2 each: a WCET of one quantum
//!   per half-frame tick),
//! * four 15 fps analytics pipelines (weight 1/3),
//! * four telemetry tasks (weight 1/6),
//!
//! on a fully loaded quad-core appliance (M = 4, total utilization 4),
//! where decode times are *bimodal*: most ticks finish in 60% of the WCET
//! budget (P-frames), some use all of it (I-frames).
//!
//! Under the SFQ model, every early finish strands the rest of the
//! quantum; under the DVQ model the slack is reclaimed — frames are never
//! more than one quantum late (Theorem 3), and the work finishes sooner.
//!
//! ```text
//! cargo run --release --example video_decoder
//! ```

use pfair::prelude::*;

fn appliance() -> TaskSystem {
    release::periodic_named(
        &[
            ("dec0", 1, 2),
            ("dec1", 1, 2),
            ("dec2", 1, 2),
            ("dec3", 1, 2),
            ("ana0", 1, 3),
            ("ana1", 1, 3),
            ("ana2", 1, 3),
            ("ana3", 1, 3),
            ("tel0", 1, 6),
            ("tel1", 1, 6),
            ("tel2", 1, 6),
            ("tel3", 1, 6),
        ],
        60, // a one-second window at ~60 quanta/s
    )
}

fn main() {
    let sys = appliance();
    let m = 4;
    println!(
        "video wall: {} tasks, utilization {} on {} cores, {} subtasks over 60 quanta\n",
        sys.num_tasks(),
        sys.utilization(),
        m,
        sys.num_subtasks()
    );

    // Bimodal decode times: 70% of ticks finish at 60% of WCET.
    let decode_times = || BimodalCost::new(30, Rat::new(3, 5), 0xF00D);

    let sfq = simulate_sfq(&sys, m, &Pd2, &mut decode_times());
    let dvq = simulate_dvq(&sys, m, &Pd2, &mut decode_times());

    for (label, sched) in [
        ("SFQ (quantum-aligned)", &sfq),
        ("DVQ (work-conserving)", &dvq),
    ] {
        let t = tardiness_stats(&sys, sched);
        let w = waste_stats(sched);
        println!("== {label} ==");
        println!(
            "  frames late: {:>3} / {}   worst lateness: {:>6} quantum",
            t.misses,
            t.subtasks,
            t.max.to_string()
        );
        println!(
            "  wasted capacity: {:>6.1}%   busy: {:>5.1}%   makespan: {} quanta",
            w.wasted_fraction().to_f64() * 100.0,
            w.busy_fraction().to_f64() * 100.0,
            w.makespan
        );
        // Per-stream lateness profile.
        for task in sys.tasks() {
            let worst = sys
                .task_subtask_refs(task.id)
                .map(|st| subtask_tardiness(&sys, sched, st))
                .max()
                .unwrap_or(Rat::ZERO);
            print!("  {}: {:<8}", task.name, worst.to_string());
        }
        println!("\n");
    }

    let t_dvq = tardiness_stats(&sys, &dvq);
    let w_sfq = waste_stats(&sfq);
    let w_dvq = waste_stats(&dvq);
    // Mean per-frame completion improvement under DVQ.
    let n = sys.num_subtasks() as f64;
    let mean_speedup = sys
        .iter_refs()
        .map(|(st, _)| (sfq.completion(st) - dvq.completion(st)).to_f64())
        .sum::<f64>()
        / n;
    println!("Summary:");
    println!(
        "  DVQ reclaims {:.1}% of machine capacity that SFQ strands,",
        (w_sfq.wasted_fraction() - w_dvq.wasted_fraction()).to_f64() * 100.0
    );
    println!("  delivers each frame {mean_speedup:.2} quanta earlier on average,");
    println!(
        "  and no frame is ever more than one quantum late (worst: {}).",
        t_dvq.max
    );
    assert!(t_dvq.max <= Rat::ONE);
    assert!(mean_speedup >= 0.0);
}
