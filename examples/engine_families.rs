//! E13: the competing optimal-scheduler families side by side. Regenerates
//! the EXPERIMENTS.md E13 table: PD²-SFQ, PD²-DVQ, Boundary-Fair and the
//! maxflow extraction on identical full-utilization periodic workloads,
//! across five actual-cost regimes (full quanta, uniformly scaled,
//! uniform-random, bimodal, and the δ-yield adversary of Theorem 3's
//! tightness construction).
//!
//! ```text
//! cargo run --release --example engine_families [trials-per-cell]
//! ```
//!
//! The sweeps use synchronous periodic releases throughout because BF's
//! domain is synchronous periodic systems; the flow engine additionally
//! handles GIS releases (exercised by the conformance campaign, not here).

use pfair::prelude::*;
use pfair::workload::experiment::CostKind;

const ENGINES: [ModelKind; 4] = [
    ModelKind::Sfq,
    ModelKind::Dvq,
    ModelKind::Bf,
    ModelKind::Flow,
];

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    println!("{trials} trials per cell; M = 4, full utilization, periodic releases, horizon 32\n");

    let regimes: [(&str, CostKind); 5] = [
        ("full quanta", CostKind::Full),
        ("scaled 7/8", CostKind::Scaled(Rat::new(7, 8))),
        (
            "uniform [1/4,1]",
            CostKind::Uniform {
                min: Rat::new(1, 4),
            },
        ),
        (
            "bimodal 60%/low 1/2",
            CostKind::Bimodal {
                full_percent: 60,
                low: Rat::new(1, 2),
            },
        ),
        (
            "adversarial δ-yield",
            CostKind::Adversarial {
                delta: Rat::new(1, 128),
                yield_percent: 70,
            },
        ),
    ];

    println!(
        "{:<22} {:<8} {:>7} {:>13} {:>9} {:>10} {:>8}",
        "cost regime", "engine", "misses", "max tardiness", "switches", "migrations", "waste%"
    );
    for (label, cost) in regimes {
        for model in ENGINES {
            let cfg = ExperimentConfig {
                m: 4,
                algorithm: pfair::core::Algorithm::Pd2,
                model,
                taskgen: TaskGenConfig {
                    target_util: Rat::int(4),
                    max_period: 12,
                    dist: WeightDist::Uniform,
                    fill_exact: true,
                },
                release: ReleaseConfig::periodic(32),
                cost,
                trials,
                base_seed: 7000,
            };
            let sweep = run_sweep(&cfg, threads);
            let switches: usize = sweep.runs.iter().map(|r| r.switches).sum();
            let migrations: usize = sweep.runs.iter().map(|r| r.migrations).sum();
            println!(
                "{label:<22} {:<8} {:>7} {:>13} {:>9} {:>10} {:>7.1}",
                model.to_string(),
                sweep.total_misses(),
                sweep.max_tardiness().to_string(),
                switches,
                migrations,
                100.0 * sweep.mean_wasted_fraction(),
            );
            // The theorems this table rides on: SFQ/BF/flow are exact or
            // window-contained (zero tardiness under every regime — for
            // BF at job, not subtask, granularity); DVQ's misses stay
            // under one quantum (Theorem 3).
            match model {
                ModelKind::Sfq | ModelKind::Flow => {
                    assert_eq!(sweep.total_misses(), 0, "{model} missed under {label}");
                }
                ModelKind::Dvq => {
                    assert!(sweep.max_tardiness() < Rat::ONE, "Theorem 3 under {label}");
                }
                _ => {}
            }
        }
        println!();
    }
}
