//! Reproduces Fig. 1: Pfair windows of a weight-3/4 task under the
//! periodic, IS, and GIS models.
//!
//! ```text
//! cargo run --example figure1_windows
//! ```

use pfair::prelude::*;
use pfair::taskmodel::release::{structured, ReleaseSpec};

fn main() {
    // (a) Periodic: subtasks T_1..T_3 with windows [0,2), [1,3), [2,4);
    //     the pattern repeats for every job.
    let periodic = release::periodic(&[(3, 4)], 8);
    println!("Fig. 1(a) — periodic task, wt 3/4:");
    println!("{}", render_windows(&periodic, TaskId(0), 10));

    // (b) IS: T_3 becomes eligible one time unit late (θ(T_3) = 1); all
    //     later windows shift right with it.
    let is_task = structured(
        &[ReleaseSpec {
            name: "T",
            e: 3,
            p: 4,
            delays: &[(3, 1)],
            drops: &[],
            early: 0,
        }],
        9,
    )
    .unwrap();
    println!("Fig. 1(b) — IS task, T_3 one unit late:");
    println!("{}", render_windows(&is_task, TaskId(0), 10));

    // (c) GIS: subtask T_2 is absent and T_3 becomes eligible one unit
    //     late.
    let gis_task = structured(
        &[ReleaseSpec {
            name: "T",
            e: 3,
            p: 4,
            delays: &[(3, 1)],
            drops: &[2],
            early: 0,
        }],
        9,
    )
    .unwrap();
    println!("Fig. 1(c) — GIS task, T_2 absent, T_3 one unit late:");
    println!("{}", render_windows(&gis_task, TaskId(0), 10));

    // The tie-break parameters behind PD² for the first job.
    println!("PD² parameters of the periodic task (first job):");
    println!("  i | r  d  | b | D");
    for s in periodic.task_subtasks(TaskId(0)).iter().take(3) {
        println!(
            "  {} | {}  {}  | {} | {}",
            s.id.index, s.release, s.deadline, s.bbit as u8, s.group_deadline
        );
    }
}
